//! Trace anonymization.
//!
//! "To protect the privacy of users and content providers, the data in our
//! logs have been anonymized by hashing the file names, IP addresses, and
//! GUIDs" (§4.1). Hashing is keyed per release so two published traces
//! cannot be joined, and it is *consistent within* a trace so analyses
//! (per-GUID grouping, per-IP joins) still work — exactly the properties
//! the paper's data set needed.

use netsession_core::hash::anonymize;
use netsession_core::id::Guid;

/// A keyed anonymizer for one trace release.
#[derive(Clone, Debug)]
pub struct Anonymizer {
    key: String,
}

impl Anonymizer {
    /// Create with a release key.
    pub fn new(key: &str) -> Self {
        Anonymizer { key: key.into() }
    }

    /// Anonymize a GUID: a new opaque 128-bit identifier.
    pub fn guid(&self, guid: Guid) -> Guid {
        let d = anonymize(&self.key, &format!("guid:{guid}"));
        Guid(
            ((d.prefix_u64() as u128) << 64)
                | u64::from_be_bytes(d.0[8..16].try_into().unwrap()) as u128,
        )
    }

    /// Anonymize an IP address to an opaque 64-bit value.
    pub fn ip(&self, ip: u32) -> u64 {
        anonymize(&self.key, &format!("ip:{ip}")).prefix_u64()
    }

    /// Anonymize a file name / URL.
    pub fn url(&self, url: &str) -> String {
        anonymize(&self.key, &format!("url:{url}")).to_hex()[..16].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_within_a_key() {
        let a = Anonymizer::new("release-2012-10");
        assert_eq!(a.guid(Guid(5)), a.guid(Guid(5)));
        assert_eq!(a.ip(42), a.ip(42));
        assert_eq!(a.url("http://x/y"), a.url("http://x/y"));
    }

    #[test]
    fn distinct_inputs_stay_distinct() {
        let a = Anonymizer::new("k");
        assert_ne!(a.guid(Guid(1)), a.guid(Guid(2)));
        assert_ne!(a.ip(1), a.ip(2));
        assert_ne!(a.url("a"), a.url("b"));
    }

    #[test]
    fn different_keys_cannot_be_joined() {
        let a = Anonymizer::new("k1");
        let b = Anonymizer::new("k2");
        assert_ne!(a.guid(Guid(1)), b.guid(Guid(1)));
        assert_ne!(a.ip(1), b.ip(1));
    }

    #[test]
    fn anonymized_guid_differs_from_original() {
        let a = Anonymizer::new("k");
        assert_ne!(a.guid(Guid(7)), Guid(7));
    }
}
