//! The assembled trace data set.
//!
//! [`TraceDataset`] is what one simulated month produces and what every
//! analysis consumes — the analogue of the paper's October-2012 log
//! collection plus EdgeScape data (Table 1 summarizes it).

use crate::geodb::EdgeScapeDb;
use crate::records::{DownloadRecord, LoginRecord, TransferRecord};
use netsession_core::id::VersionId;

/// One month of logs.
#[derive(Clone, Debug, Default)]
pub struct TraceDataset {
    /// CN download records.
    pub downloads: Vec<DownloadRecord>,
    /// CN login records.
    pub logins: Vec<LoginRecord>,
    /// Per-transfer p2p byte flows (§6.1 input).
    pub transfers: Vec<TransferRecord>,
    /// DN registration log: (version, cumulative registrations) — Fig 5.
    pub registrations: Vec<(VersionId, u64)>,
    /// EdgeScape-style geolocation data.
    pub geodb: EdgeScapeDb,
}

/// The Table-1 style summary of a data set.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSummary {
    /// Total log entries (downloads + logins + transfers).
    pub log_entries: u64,
    /// Distinct GUIDs across all records.
    pub guids: u64,
    /// Distinct objects downloaded ("Distinct URLs").
    pub urls: u64,
    /// Distinct IPs in the geo data.
    pub ips: u64,
    /// Downloads initiated.
    pub downloads: u64,
    /// Distinct geographic locations.
    pub locations: u64,
    /// Distinct autonomous systems.
    pub ases: u64,
    /// Distinct country codes.
    pub countries: u64,
}

impl TraceDataset {
    /// Compute the Table-1 summary.
    pub fn summary(&self) -> DatasetSummary {
        let mut guids: Vec<u128> = self
            .downloads
            .iter()
            .map(|d| d.guid.0)
            .chain(self.logins.iter().map(|l| l.guid.0))
            .collect();
        guids.sort_unstable();
        guids.dedup();
        let mut urls: Vec<u64> = self.downloads.iter().map(|d| d.object.0).collect();
        urls.sort_unstable();
        urls.dedup();
        DatasetSummary {
            log_entries: (self.downloads.len() + self.logins.len() + self.transfers.len()) as u64,
            guids: guids.len() as u64,
            urls: urls.len() as u64,
            ips: self.geodb.distinct_ips() as u64,
            downloads: self.downloads.len() as u64,
            locations: self.geodb.distinct_locations() as u64,
            ases: self.geodb.distinct_ases() as u64,
            countries: self.geodb.distinct_countries() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geodb::GeoInfo;
    use crate::records::DownloadOutcome;
    use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
    use netsession_core::time::SimTime;
    use netsession_core::units::ByteCount;

    #[test]
    fn summary_counts_distinct_entities() {
        let mut ds = TraceDataset::default();
        for g in [1u128, 1, 2] {
            ds.downloads.push(DownloadRecord {
                guid: Guid(g),
                object: ObjectId(g as u64),
                cp: CpCode(1),
                size: ByteCount(10),
                p2p_enabled: false,
                started: SimTime(0),
                ended: SimTime(1),
                bytes_infra: ByteCount(10),
                bytes_peers: ByteCount(0),
                outcome: DownloadOutcome::Completed,
                initial_peers: 0,
                asn: AsNumber(1),
                country: 0,
                region: 0,
            });
        }
        ds.geodb.insert(
            7,
            GeoInfo {
                country_code: "US".into(),
                city: "NYC".into(),
                lat: 40.0,
                lon: -74.0,
                tz_offset: -5,
                asn: AsNumber(1),
                country_idx: 0,
                region_idx: 0,
            },
        );
        let s = ds.summary();
        assert_eq!(s.downloads, 3);
        assert_eq!(s.guids, 2);
        assert_eq!(s.urls, 2);
        assert_eq!(s.ips, 1);
        assert_eq!(s.log_entries, 3);
        assert_eq!(s.countries, 1);
    }
}
