//! # netsession-logs
//!
//! The production-style log pipeline (§4.1). The simulation emits the same
//! record kinds the paper's data set contains — download records from the
//! CNs, login records, DN registration logs, and per-transfer p2p byte
//! flows — plus an EdgeScape-style geolocation database keyed by IP. The
//! analytics crate consumes a [`TraceDataset`] exactly the way the paper's
//! authors consumed their logs.
//!
//! "To protect the privacy of users and content providers, the data in our
//! logs have been anonymized by hashing the file names, IP addresses, and
//! GUIDs" — [`anonymize`] implements that step.

pub mod anonymize;
pub mod dataset;
pub mod geodb;
pub mod records;
pub mod sink;

pub use dataset::TraceDataset;
pub use geodb::{EdgeScapeDb, GeoInfo};
pub use records::{DownloadOutcome, DownloadRecord, LoginRecord, TransferRecord};
pub use sink::{
    DigestSink, DigestTriple, ProfileDigest, RecordSink, SeriesDigest, StreamingSummary, Tee,
};
