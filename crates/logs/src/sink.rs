//! Streaming record sinks.
//!
//! At paper scale (25.9M GUIDs, 4.6B log entries) a month of records does
//! not fit in RAM as `Vec`s. A [`RecordSink`] receives each record the
//! moment the CN would have written it, so a run can keep *running
//! summaries* ([`StreamingSummary`]) and *running digests*
//! ([`DigestSink`]) instead of accumulating the log. The in-RAM
//! [`TraceDataset`] is itself a sink, so small-scale runs and the analytics
//! pipeline keep working unchanged — and the property tests can prove the
//! streamed summary equals the in-RAM [`DatasetSummary`] computed after the
//! fact.

use crate::dataset::{DatasetSummary, TraceDataset};
use crate::records::{DownloadOutcome, DownloadRecord, LoginRecord, TransferRecord};
use netsession_core::fxhash::FxHashSet;
use netsession_core::hash::{Digest, Sha256};
use netsession_core::id::VersionId;
use netsession_obs::profile::{encode_window, ProfileSink, WindowRecord};

/// Receives log records as they are emitted, in emission order.
///
/// Implementations must be order-sensitive only in ways the simulation
/// already guarantees deterministic (the CN writes records in virtual-time
/// order per shard); they must not assume they see *all* record kinds.
pub trait RecordSink {
    /// A CN download record was written.
    fn on_download(&mut self, r: &DownloadRecord);
    /// A CN login record was written.
    fn on_login(&mut self, r: &LoginRecord);
    /// A p2p transfer completed.
    fn on_transfer(&mut self, r: &TransferRecord);
    /// The DN registration log advanced to `cumulative` for `version`.
    fn on_registration(&mut self, version: VersionId, cumulative: u64) {
        let _ = (version, cumulative);
    }
}

/// The in-RAM dataset is the trivial sink: it accumulates everything.
impl RecordSink for TraceDataset {
    fn on_download(&mut self, r: &DownloadRecord) {
        self.downloads.push(r.clone());
    }

    fn on_login(&mut self, r: &LoginRecord) {
        self.logins.push(r.clone());
    }

    fn on_transfer(&mut self, r: &TransferRecord) {
        self.transfers.push(r.clone());
    }

    fn on_registration(&mut self, version: VersionId, cumulative: u64) {
        self.registrations.push((version, cumulative));
    }
}

/// A Table-1 summary maintained incrementally — O(distinct entities) RAM,
/// not O(records). Shards each keep one and [`StreamingSummary::merge`]
/// them at the end; the result is identical to computing
/// [`TraceDataset::summary`] over the full record set.
#[derive(Clone, Debug, Default)]
pub struct StreamingSummary {
    downloads: u64,
    logins: u64,
    transfers: u64,
    completed: u64,
    bytes_infra: u64,
    bytes_peers: u64,
    guids: FxHashSet<u128>,
    urls: FxHashSet<u64>,
    ips: FxHashSet<u32>,
    locations: FxHashSet<(u64, u64)>,
    ases: FxHashSet<u32>,
    countries: FxHashSet<u16>,
}

impl StreamingSummary {
    /// Fresh, empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another shard's summary into this one. Counters add; distinct
    /// sets union — exactly what "distinct across the whole trace" means.
    pub fn merge(&mut self, other: &StreamingSummary) {
        self.downloads += other.downloads;
        self.logins += other.logins;
        self.transfers += other.transfers;
        self.completed += other.completed;
        self.bytes_infra += other.bytes_infra;
        self.bytes_peers += other.bytes_peers;
        self.guids.extend(other.guids.iter().copied());
        self.urls.extend(other.urls.iter().copied());
        self.ips.extend(other.ips.iter().copied());
        self.locations.extend(other.locations.iter().copied());
        self.ases.extend(other.ases.iter().copied());
        self.countries.extend(other.countries.iter().copied());
    }

    /// Completed downloads seen so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total bytes served from the edge so far.
    pub fn bytes_infra(&self) -> u64 {
        self.bytes_infra
    }

    /// Total bytes served by peers so far.
    pub fn bytes_peers(&self) -> u64 {
        self.bytes_peers
    }

    /// Logins seen so far.
    pub fn logins(&self) -> u64 {
        self.logins
    }

    /// Fraction of bytes that came from peers (the paper's global peer
    /// efficiency, §5.1).
    pub fn peer_efficiency(&self) -> f64 {
        let total = self.bytes_infra + self.bytes_peers;
        if total == 0 {
            0.0
        } else {
            self.bytes_peers as f64 / total as f64
        }
    }

    /// The Table-1 summary. Geo distinctions (`ips`, `locations`, `ases`,
    /// `countries`) are derived from login records, which carry the same
    /// EdgeScape fields the geo DB stores — equal to the DB-side counts
    /// whenever the DB was populated from those logins (which is how the
    /// simulation builds it).
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            log_entries: self.downloads + self.logins + self.transfers,
            guids: self.guids.len() as u64,
            urls: self.urls.len() as u64,
            ips: self.ips.len() as u64,
            downloads: self.downloads,
            locations: self.locations.len() as u64,
            ases: self.ases.len() as u64,
            countries: self.countries.len() as u64,
        }
    }
}

impl RecordSink for StreamingSummary {
    fn on_download(&mut self, r: &DownloadRecord) {
        self.downloads += 1;
        if r.outcome == DownloadOutcome::Completed {
            self.completed += 1;
        }
        self.bytes_infra += r.bytes_infra.bytes();
        self.bytes_peers += r.bytes_peers.bytes();
        self.guids.insert(r.guid.0);
        self.urls.insert(r.object.0);
    }

    fn on_login(&mut self, r: &LoginRecord) {
        self.logins += 1;
        self.guids.insert(r.guid.0);
        self.ips.insert(r.ip);
        self.locations.insert((r.lat.to_bits(), r.lon.to_bits()));
        self.ases.insert(r.asn.0);
        self.countries.insert(r.country);
    }

    fn on_transfer(&mut self, _r: &TransferRecord) {
        self.transfers += 1;
    }
}

/// Canonical byte encoding of a download record (fixed-width little-endian
/// fields, emission order). Two runs produce the same digest iff they
/// emitted bit-identical records in the same order — the byte-identity
/// obligation the sharded runner is property-tested against.
pub fn encode_download(r: &DownloadRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.guid.0.to_le_bytes());
    out.extend_from_slice(&r.object.0.to_le_bytes());
    out.extend_from_slice(&r.cp.0.to_le_bytes());
    out.extend_from_slice(&r.size.bytes().to_le_bytes());
    out.push(r.p2p_enabled as u8);
    out.extend_from_slice(&r.started.as_micros().to_le_bytes());
    out.extend_from_slice(&r.ended.as_micros().to_le_bytes());
    out.extend_from_slice(&r.bytes_infra.bytes().to_le_bytes());
    out.extend_from_slice(&r.bytes_peers.bytes().to_le_bytes());
    out.push(match r.outcome {
        DownloadOutcome::Completed => 0,
        DownloadOutcome::Failed {
            system_related: false,
        } => 1,
        DownloadOutcome::Failed {
            system_related: true,
        } => 2,
        DownloadOutcome::Abandoned => 3,
    });
    out.extend_from_slice(&r.initial_peers.to_le_bytes());
    out.extend_from_slice(&r.asn.0.to_le_bytes());
    out.extend_from_slice(&r.country.to_le_bytes());
    out.push(r.region);
}

/// Canonical byte encoding of a login record.
pub fn encode_login(r: &LoginRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.at.as_micros().to_le_bytes());
    out.extend_from_slice(&r.guid.0.to_le_bytes());
    out.extend_from_slice(&r.ip.to_le_bytes());
    out.extend_from_slice(&r.asn.0.to_le_bytes());
    out.extend_from_slice(&r.country.to_le_bytes());
    out.extend_from_slice(&r.lat.to_bits().to_le_bytes());
    out.extend_from_slice(&r.lon.to_bits().to_le_bytes());
    out.push(r.uploads_enabled as u8);
    out.extend_from_slice(&r.software_version.to_le_bytes());
    out.push(r.secondary_guids.len() as u8);
    for sg in &r.secondary_guids {
        for w in sg.0 {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
}

/// Canonical byte encoding of a transfer record.
pub fn encode_transfer(r: &TransferRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.from_guid.0.to_le_bytes());
    out.extend_from_slice(&r.to_guid.0.to_le_bytes());
    out.extend_from_slice(&r.from_as.0.to_le_bytes());
    out.extend_from_slice(&r.to_as.0.to_le_bytes());
    out.extend_from_slice(&r.from_country.to_le_bytes());
    out.extend_from_slice(&r.to_country.to_le_bytes());
    out.extend_from_slice(&r.bytes.bytes().to_le_bytes());
    out.extend_from_slice(&r.object.0.to_le_bytes());
}

/// Running SHA-256 over each record stream — byte-identity of two runs
/// without storing either. The sharded runner keeps one per shard and
/// compares the merged digests against the sequential oracle's.
#[derive(Clone, Default)]
pub struct DigestSink {
    downloads: Sha256,
    logins: Sha256,
    transfers: Sha256,
    scratch: Vec<u8>,
    n_downloads: u64,
    n_logins: u64,
    n_transfers: u64,
}

impl DigestSink {
    /// Fresh sink with empty-stream digests.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish: `(download, login, transfer)` stream digests plus counts.
    pub fn finalize(self) -> DigestTriple {
        DigestTriple {
            downloads: self.downloads.finalize(),
            logins: self.logins.finalize(),
            transfers: self.transfers.finalize(),
            n_downloads: self.n_downloads,
            n_logins: self.n_logins,
            n_transfers: self.n_transfers,
        }
    }
}

impl RecordSink for DigestSink {
    fn on_download(&mut self, r: &DownloadRecord) {
        self.scratch.clear();
        encode_download(r, &mut self.scratch);
        self.downloads.update(&self.scratch);
        self.n_downloads += 1;
    }

    fn on_login(&mut self, r: &LoginRecord) {
        self.scratch.clear();
        encode_login(r, &mut self.scratch);
        self.logins.update(&self.scratch);
        self.n_logins += 1;
    }

    fn on_transfer(&mut self, r: &TransferRecord) {
        self.scratch.clear();
        encode_transfer(r, &mut self.scratch);
        self.transfers.update(&self.scratch);
        self.n_transfers += 1;
    }
}

/// Finalized per-stream digests and record counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestTriple {
    /// Digest of the download-record stream.
    pub downloads: Digest,
    /// Digest of the login-record stream.
    pub logins: Digest,
    /// Digest of the transfer-record stream.
    pub transfers: Digest,
    /// Download records hashed.
    pub n_downloads: u64,
    /// Login records hashed.
    pub n_logins: u64,
    /// Transfer records hashed.
    pub n_transfers: u64,
}

impl DigestTriple {
    /// Compact fingerprint for log lines and byte-diff gates.
    pub fn fingerprint(&self) -> String {
        format!(
            "dl={}x{} lg={}x{} tx={}x{}",
            &self.downloads.to_hex()[..16],
            self.n_downloads,
            &self.logins.to_hex()[..16],
            self.n_logins,
            &self.transfers.to_hex()[..16],
            self.n_transfers,
        )
    }
}

/// Running SHA-256 over the shard profiler's deterministic telemetry
/// stream (`netsession_obs::profile`), hashing each window record's
/// canonical [`encode_window`] bytes — the profiler's sibling of
/// [`DigestSink`]. Lives here rather than in `netsession-obs` because the
/// obs crate is dependency-free and has no SHA-256.
#[derive(Clone, Default)]
pub struct ProfileDigest {
    hash: Sha256,
    scratch: Vec<u8>,
    records: u64,
}

impl ProfileDigest {
    /// Fresh sink with the empty-stream digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records hashed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finish: digest of the whole deterministic stream.
    pub fn finalize(self) -> Digest {
        self.hash.finalize()
    }
}

impl ProfileSink for ProfileDigest {
    fn on_window(&mut self, r: &WindowRecord<'_>) {
        self.scratch.clear();
        encode_window(r, &mut self.scratch);
        self.hash.update(&self.scratch);
        self.records += 1;
    }

    /// `<hex16>x<records>` — same shape as [`DigestTriple::fingerprint`]'s
    /// per-stream fields, usable on deterministic stdout and in byte-diff
    /// gates.
    fn fingerprint(&self) -> Option<String> {
        let digest = self.hash.clone().finalize();
        Some(format!("{}x{}", &digest.to_hex()[..16], self.records))
    }
}

/// SHA-256 fingerprint of a merged time series' canonical little-endian
/// encoding ([`netsession_obs::MergedSeries::encode`]) — the series
/// sibling of [`ProfileDigest`], and placed here for the same reason:
/// `netsession-obs` is dependency-free and has no SHA-256. Two series are
/// byte-identical iff their digests match, so determinism gates can
/// compare one fingerprint line instead of whole sidecar files.
pub struct SeriesDigest;

impl SeriesDigest {
    /// Full digest of the canonical encoding.
    pub fn digest(series: &netsession_obs::MergedSeries) -> Digest {
        let mut h = Sha256::new();
        h.update(&series.encode());
        h.finalize()
    }

    /// `<hex16>` prefix for deterministic stdout and byte-diff gates.
    pub fn fingerprint(series: &netsession_obs::MergedSeries) -> String {
        Self::digest(series).to_hex()[..16].to_string()
    }
}

/// Feed every record to both sinks — e.g. a summary and a digest at once.
pub struct Tee<'a, A: RecordSink, B: RecordSink>(pub &'a mut A, pub &'a mut B);

impl<A: RecordSink, B: RecordSink> RecordSink for Tee<'_, A, B> {
    fn on_download(&mut self, r: &DownloadRecord) {
        self.0.on_download(r);
        self.1.on_download(r);
    }

    fn on_login(&mut self, r: &LoginRecord) {
        self.0.on_login(r);
        self.1.on_login(r);
    }

    fn on_transfer(&mut self, r: &TransferRecord) {
        self.0.on_transfer(r);
        self.1.on_transfer(r);
    }

    fn on_registration(&mut self, version: VersionId, cumulative: u64) {
        self.0.on_registration(version, cumulative);
        self.1.on_registration(version, cumulative);
    }
}
