//! The streaming sinks are an optimization, not an approximation: feeding a
//! randomized record stream through [`StreamingSummary`] must yield exactly
//! the [`DatasetSummary`] computed from the accumulated in-RAM
//! [`TraceDataset`], and [`DigestSink`] must be order-sensitive and
//! stream-separating.

use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
use netsession_core::rng::DetRng;
use netsession_core::time::SimTime;
use netsession_core::units::ByteCount;
use netsession_logs::geodb::GeoInfo;
use netsession_logs::sink::Tee;
use netsession_logs::{
    DigestSink, DownloadOutcome, DownloadRecord, LoginRecord, RecordSink, StreamingSummary,
    TraceDataset, TransferRecord,
};

fn random_download(rng: &mut DetRng) -> DownloadRecord {
    let infra = rng.below(1 << 30);
    let peers = rng.below(1 << 30);
    DownloadRecord {
        guid: Guid(rng.below(200) as u128),
        object: ObjectId(rng.below(50)),
        cp: CpCode(rng.below(8) as u32),
        size: ByteCount(infra + peers),
        p2p_enabled: rng.chance(0.8),
        started: SimTime(rng.below(1 << 40)),
        ended: SimTime(rng.below(1 << 40) + (1 << 40)),
        bytes_infra: ByteCount(infra),
        bytes_peers: ByteCount(peers),
        outcome: match rng.index(4) {
            0 | 1 => DownloadOutcome::Completed,
            2 => DownloadOutcome::Failed {
                system_related: rng.chance(0.5),
            },
            _ => DownloadOutcome::Abandoned,
        },
        initial_peers: rng.below(40) as u32,
        asn: AsNumber(rng.below(30) as u32),
        country: rng.below(20) as u16,
        region: rng.below(9) as u8,
    }
}

fn random_login(rng: &mut DetRng) -> LoginRecord {
    // Geo facts are a function of the IP, as in EdgeScape: the same address
    // always resolves to the same location/AS/country. (The geo DB is
    // last-write-wins per IP, so an inconsistent generator would diverge
    // from the streamed counts by construction, not by bug.)
    let ip = rng.below(500) as u32;
    LoginRecord {
        at: SimTime(rng.below(1 << 40)),
        guid: Guid(rng.below(200) as u128),
        ip,
        asn: AsNumber(ip % 30),
        country: (ip % 20) as u16,
        lat: ((ip % 180) as f64) - 90.0,
        lon: ((ip / 7 % 360) as f64) - 180.0,
        uploads_enabled: rng.chance(0.9),
        software_version: rng.below(12) as u32,
        secondary_guids: Vec::new(),
    }
}

fn random_transfer(rng: &mut DetRng) -> TransferRecord {
    TransferRecord {
        from_guid: Guid(rng.below(200) as u128),
        to_guid: Guid(rng.below(200) as u128),
        from_as: AsNumber(rng.below(30) as u32),
        to_as: AsNumber(rng.below(30) as u32),
        from_country: rng.below(20) as u16,
        to_country: rng.below(20) as u16,
        bytes: ByteCount(rng.below(1 << 28)),
        object: ObjectId(rng.below(50)),
    }
}

/// Geo info derived from a login the same way the simulation populates the
/// EdgeScape DB — one insert per login, keyed by IP.
fn geo_of(l: &LoginRecord) -> GeoInfo {
    GeoInfo {
        country_code: format!("C{:02}", l.country),
        city: format!("city-{}", l.ip % 37),
        lat: l.lat,
        lon: l.lon,
        tz_offset: 0,
        asn: l.asn,
        country_idx: l.country,
        region_idx: 0,
    }
}

/// Streamed summary == after-the-fact `TraceDataset::summary()`, across 50
/// seeded record streams, including shard-style split/merge of the
/// streaming side.
#[test]
fn streaming_summary_matches_dataset_summary_across_50_seeds() {
    for seed in 0..50u64 {
        let mut rng = DetRng::seeded(0x51f7_0000 ^ seed);
        let mut ds = TraceDataset::default();
        let mut whole = StreamingSummary::new();
        // Also split the same stream across 3 "shards" and merge, proving
        // merge() is the right combiner for distinct counts.
        let mut shards = [
            StreamingSummary::new(),
            StreamingSummary::new(),
            StreamingSummary::new(),
        ];
        let n = 200 + rng.index(400);
        for i in 0..n {
            let shard = &mut shards[i % 3];
            match rng.index(3) {
                0 => {
                    let r = random_download(&mut rng);
                    ds.on_download(&r);
                    whole.on_download(&r);
                    shard.on_download(&r);
                }
                1 => {
                    let r = random_login(&mut rng);
                    // The simulation records geo data at every login; mirror
                    // that so the DB-side distinct counts are comparable.
                    ds.geodb.insert(r.ip, geo_of(&r));
                    ds.on_login(&r);
                    whole.on_login(&r);
                    shard.on_login(&r);
                }
                _ => {
                    let r = random_transfer(&mut rng);
                    ds.on_transfer(&r);
                    whole.on_transfer(&r);
                    shard.on_transfer(&r);
                }
            }
        }
        let oracle = ds.summary();
        assert_eq!(whole.summary(), oracle, "seed {seed}: streamed != in-RAM");
        let mut merged = StreamingSummary::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.summary(), oracle, "seed {seed}: merged != in-RAM");
    }
}

/// Same records, same order → same digests; any reorder, mutation, or
/// cross-stream swap changes them.
#[test]
fn digest_sink_separates_streams_and_orders() {
    let mut rng = DetRng::seeded(0x00d1_6e57);
    let a = random_download(&mut rng);
    let mut b = random_download(&mut rng);
    b.bytes_peers = ByteCount(b.bytes_peers.bytes() + 1);
    let l = random_login(&mut rng);

    let run = |records: &[&DownloadRecord], logins: &[&LoginRecord]| {
        let mut s = DigestSink::new();
        for r in records {
            s.on_download(r);
        }
        for r in logins {
            s.on_login(r);
        }
        s.finalize()
    };

    let base = run(&[&a, &b], &[&l]);
    assert_eq!(base, run(&[&a, &b], &[&l]), "replay must be identical");
    assert_ne!(
        base.downloads,
        run(&[&b, &a], &[&l]).downloads,
        "order must matter"
    );
    let mut b2 = b.clone();
    b2.bytes_infra = ByteCount(b2.bytes_infra.bytes() ^ 1);
    assert_ne!(
        base.downloads,
        run(&[&a, &b2], &[&l]).downloads,
        "field mutation must show"
    );
    assert_ne!(
        base.downloads, base.logins,
        "streams must digest independently"
    );
    assert_eq!(base.n_downloads, 2);
    assert_eq!(base.n_logins, 1);
}

/// `Tee` delivers every record to both sinks.
#[test]
fn tee_feeds_both_sinks() {
    let mut rng = DetRng::seeded(0x7ee);
    let mut sum = StreamingSummary::new();
    let mut dig = DigestSink::new();
    {
        let mut tee = Tee(&mut sum, &mut dig);
        for _ in 0..10 {
            tee.on_download(&random_download(&mut rng));
            tee.on_login(&random_login(&mut rng));
            tee.on_transfer(&random_transfer(&mut rng));
        }
    }
    let s = sum.summary();
    assert_eq!(s.downloads, 10);
    assert_eq!(s.log_entries, 30);
    let t = dig.finalize();
    assert_eq!((t.n_downloads, t.n_logins, t.n_transfers), (10, 10, 10));
}
