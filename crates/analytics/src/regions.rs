//! Table 2, Fig 2, and Fig 8: geography of downloads and peers.

use netsession_core::id::CpCode;
use netsession_logs::TraceDataset;
use std::collections::HashMap;

/// Number of Table-2 regions.
pub const REGIONS: usize = 9;

/// Table 2: per-customer download shares over the nine regions, plus the
/// "All customers" row. Rows are normalized to sum to 1 (empty rows stay
/// zero).
pub fn table2(ds: &TraceDataset) -> (Vec<(CpCode, [f64; REGIONS])>, [f64; REGIONS]) {
    let mut per_cp: HashMap<CpCode, [u64; REGIONS]> = HashMap::new();
    let mut all = [0u64; REGIONS];
    for d in &ds.downloads {
        let r = (d.region as usize).min(REGIONS - 1);
        per_cp.entry(d.cp).or_insert([0; REGIONS])[r] += 1;
        all[r] += 1;
    }
    let normalize = |counts: &[u64; REGIONS]| {
        let total: u64 = counts.iter().sum();
        let mut out = [0.0; REGIONS];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(counts) {
                *o = *c as f64 / total as f64;
            }
        }
        out
    };
    let mut rows: Vec<(CpCode, [f64; REGIONS])> = per_cp
        .iter()
        .map(|(cp, counts)| (*cp, normalize(counts)))
        .collect();
    rows.sort_by_key(|(cp, _)| *cp);
    (rows, normalize(&all))
}

/// Fig 2 bubble data: per (country index), the number of peers whose
/// *first* connection came from there.
pub fn fig2_first_connections(ds: &TraceDataset) -> Vec<(u16, u64)> {
    let mut first: HashMap<u128, (u64, u16)> = HashMap::new();
    for l in &ds.logins {
        let e = first.entry(l.guid.0).or_insert((u64::MAX, 0));
        if l.at.as_micros() < e.0 {
            *e = (l.at.as_micros(), l.country);
        }
    }
    let mut counts: HashMap<u16, u64> = HashMap::new();
    for (_, country) in first.values() {
        *counts.entry(*country).or_insert(0) += 1;
    }
    let mut out: Vec<(u16, u64)> = counts.into_iter().collect();
    // Tie-break on the country index so the ordering is deterministic.
    out.sort_by_key(|(country, n)| (std::cmp::Reverse(*n), *country));
    out
}

/// Fig 8 classes: how much the peers contribute per country, for one
/// provider.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoverageClass {
    /// Infrastructure serves more bytes than the peers.
    InfraDominant,
    /// Peers serve 50–100 % as many bytes as the infrastructure.
    PeersComparable,
    /// Peers serve *more* than the infrastructure (infra < 50 % of peers).
    PeersDominant,
}

/// Fig 8: per-country byte split for one provider's completed downloads.
/// Returns (country, infra bytes, peer bytes, class).
pub fn fig8_country_classes(ds: &TraceDataset, cp: CpCode) -> Vec<(u16, u64, u64, CoverageClass)> {
    let mut per_country: HashMap<u16, (u64, u64)> = HashMap::new();
    for d in ds.downloads.iter().filter(|d| d.cp == cp) {
        let e = per_country.entry(d.country).or_insert((0, 0));
        e.0 += d.bytes_infra.bytes();
        e.1 += d.bytes_peers.bytes();
    }
    let mut out: Vec<(u16, u64, u64, CoverageClass)> = per_country
        .into_iter()
        .map(|(country, (infra, peers))| {
            let class = if infra > peers {
                CoverageClass::InfraDominant
            } else if infra * 2 >= peers {
                CoverageClass::PeersComparable
            } else {
                CoverageClass::PeersDominant
            };
            (country, infra, peers, class)
        })
        .collect();
    out.sort_by_key(|(c, _, _, _)| *c);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, Guid, ObjectId};
    use netsession_core::time::SimTime;
    use netsession_core::units::ByteCount;
    use netsession_logs::records::{DownloadOutcome, DownloadRecord, LoginRecord};

    fn dl(cp: u32, region: u8, country: u16, infra: u64, peers: u64) -> DownloadRecord {
        DownloadRecord {
            guid: Guid(1),
            object: ObjectId(1),
            cp: CpCode(cp),
            size: ByteCount(infra + peers),
            p2p_enabled: true,
            started: SimTime(0),
            ended: SimTime(1),
            bytes_infra: ByteCount(infra),
            bytes_peers: ByteCount(peers),
            outcome: DownloadOutcome::Completed,
            initial_peers: 0,
            asn: AsNumber(1),
            country,
            region,
        }
    }

    #[test]
    fn table2_normalizes_rows() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, 0, 0, 1, 0));
        ds.downloads.push(dl(1, 6, 0, 1, 0));
        ds.downloads.push(dl(1, 6, 0, 1, 0));
        ds.downloads.push(dl(2, 8, 0, 1, 0));
        let (rows, all) = table2(&ds);
        assert_eq!(rows.len(), 2);
        let row1 = rows.iter().find(|(cp, _)| *cp == CpCode(1)).unwrap().1;
        assert!((row1[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((row1[6] - 2.0 / 3.0).abs() < 1e-9);
        assert!((all.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((all[8] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fig2_uses_first_connection_only() {
        let mut ds = TraceDataset::default();
        let mk = |guid: u128, at: u64, country: u16| LoginRecord {
            at: SimTime(at),
            guid: Guid(guid),
            ip: 1,
            asn: AsNumber(1),
            country,
            lat: 0.0,
            lon: 0.0,
            uploads_enabled: true,
            software_version: 1,
            secondary_guids: vec![],
        };
        ds.logins.push(mk(1, 10, 5)); // later login elsewhere
        ds.logins.push(mk(1, 0, 3)); // first connection: country 3
        ds.logins.push(mk(2, 0, 3));
        let bubbles = fig2_first_connections(&ds);
        assert_eq!(bubbles, vec![(3, 2)]);
    }

    #[test]
    fn fig8_classes() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, 0, 10, 100, 10)); // infra dominant
        ds.downloads.push(dl(1, 0, 11, 60, 100)); // comparable (infra ≥ 50% of peers)
        ds.downloads.push(dl(1, 0, 12, 10, 100)); // peers dominant
        ds.downloads.push(dl(2, 0, 13, 0, 100)); // other provider: excluded
        let classes = fig8_country_classes(&ds, CpCode(1));
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].3, CoverageClass::InfraDominant);
        assert_eq!(classes[1].3, CoverageClass::PeersComparable);
        assert_eq!(classes[2].3, CoverageClass::PeersDominant);
    }
}
