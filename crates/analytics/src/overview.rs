//! Table 1 and the §5.1 headline numbers.

use crate::stats::mean;
use netsession_logs::records::DownloadOutcome;
use netsession_logs::TraceDataset;
use std::collections::{HashMap, HashSet};

/// The §5.1 headline aggregates.
#[derive(Clone, Debug)]
pub struct Headline {
    /// Fraction of peers with uploads enabled at their last login (~31 %).
    pub enabled_fraction: f64,
    /// Fraction of distinct downloaded files with p2p enabled (1.7 %).
    pub p2p_file_fraction: f64,
    /// Fraction of all downloaded bytes on p2p-enabled files (57.4 %).
    pub p2p_byte_share: f64,
    /// Mean peer efficiency over peer-assisted downloads (71.4 %).
    pub mean_peer_efficiency: f64,
    /// Bytes-weighted peer efficiency over peer-assisted downloads —
    /// the "70–80 % of the traffic offloaded" abstract claim.
    pub offload_fraction: f64,
}

/// Compute the headline numbers.
pub fn headline(ds: &TraceDataset) -> Headline {
    // Last-login upload setting per GUID.
    let mut last: HashMap<u128, (u64, bool)> = HashMap::new();
    for l in &ds.logins {
        let e = last.entry(l.guid.0).or_insert((0, l.uploads_enabled));
        if l.at.as_micros() >= e.0 {
            *e = (l.at.as_micros(), l.uploads_enabled);
        }
    }
    let enabled_fraction = if last.is_empty() {
        0.0
    } else {
        last.values().filter(|(_, e)| *e).count() as f64 / last.len() as f64
    };

    let mut p2p_files: HashSet<u64> = HashSet::new();
    let mut all_files: HashSet<u64> = HashSet::new();
    let mut p2p_bytes = 0u64;
    let mut total_bytes = 0u64;
    let mut efficiencies = Vec::new();
    let mut peer_bytes_in_p2p = 0u64;
    let mut total_bytes_in_p2p = 0u64;
    for d in &ds.downloads {
        all_files.insert(d.object.0);
        let bytes = d.total_bytes().bytes();
        total_bytes += bytes;
        if d.p2p_enabled {
            p2p_files.insert(d.object.0);
            p2p_bytes += bytes;
            if d.outcome == DownloadOutcome::Completed {
                efficiencies.push(d.peer_efficiency());
                peer_bytes_in_p2p += d.bytes_peers.bytes();
                total_bytes_in_p2p += bytes;
            }
        }
    }

    Headline {
        enabled_fraction,
        p2p_file_fraction: if all_files.is_empty() {
            0.0
        } else {
            p2p_files.len() as f64 / all_files.len() as f64
        },
        p2p_byte_share: if total_bytes == 0 {
            0.0
        } else {
            p2p_bytes as f64 / total_bytes as f64
        },
        mean_peer_efficiency: mean(efficiencies),
        offload_fraction: if total_bytes_in_p2p == 0 {
            0.0
        } else {
            peer_bytes_in_p2p as f64 / total_bytes_in_p2p as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
    use netsession_core::time::SimTime;
    use netsession_core::units::ByteCount;
    use netsession_logs::records::{DownloadRecord, LoginRecord};

    fn dl(object: u64, p2p: bool, infra: u64, peers: u64) -> DownloadRecord {
        DownloadRecord {
            guid: Guid(1),
            object: ObjectId(object),
            cp: CpCode(1),
            size: ByteCount(infra + peers),
            p2p_enabled: p2p,
            started: SimTime(0),
            ended: SimTime(10),
            bytes_infra: ByteCount(infra),
            bytes_peers: ByteCount(peers),
            outcome: DownloadOutcome::Completed,
            initial_peers: 0,
            asn: AsNumber(1),
            country: 0,
            region: 0,
        }
    }

    fn login(guid: u128, at: u64, enabled: bool) -> LoginRecord {
        LoginRecord {
            at: SimTime(at),
            guid: Guid(guid),
            ip: 1,
            asn: AsNumber(1),
            country: 0,
            lat: 0.0,
            lon: 0.0,
            uploads_enabled: enabled,
            software_version: 1,
            secondary_guids: vec![],
        }
    }

    #[test]
    fn headline_computes_all_fields() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, true, 300, 700)); // p2p file, eff 0.7
        ds.downloads.push(dl(2, false, 500, 0)); // infra-only
        ds.logins.push(login(1, 0, false));
        ds.logins.push(login(1, 5, true)); // last wins
        ds.logins.push(login(2, 0, false));
        let h = headline(&ds);
        assert!((h.enabled_fraction - 0.5).abs() < 1e-9);
        assert!((h.p2p_file_fraction - 0.5).abs() < 1e-9);
        assert!((h.p2p_byte_share - 1000.0 / 1500.0).abs() < 1e-9);
        assert!((h.mean_peer_efficiency - 0.7).abs() < 1e-9);
        assert!((h.offload_fraction - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_is_all_zero() {
        let h = headline(&TraceDataset::default());
        assert_eq!(h.enabled_fraction, 0.0);
        assert_eq!(h.p2p_byte_share, 0.0);
        assert_eq!(h.mean_peer_efficiency, 0.0);
    }
}
