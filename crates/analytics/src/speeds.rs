//! Fig 4: download-speed comparison.
//!
//! "Figure 4 makes this comparison for downloads from the two networks with
//! the most downloads, AS X and AS Y. We identified all downloads from
//! these networks where either a) all the bytes came from the edge servers,
//! or b) at least 50 % of the bytes came from peers. We then averaged the
//! speed of each download across its entire length."

use crate::stats::Cdf;
use netsession_core::id::AsNumber;
use netsession_logs::records::DownloadOutcome;
use netsession_logs::TraceDataset;
use std::collections::HashMap;

/// Speed CDFs for one AS.
pub struct AsSpeeds {
    /// The AS.
    pub asn: AsNumber,
    /// Downloads in the AS (for context).
    pub downloads: usize,
    /// Edge-only class, Mbps.
    pub edge_only: Cdf,
    /// ≥50 % p2p class, Mbps.
    pub mostly_p2p: Cdf,
}

/// The two ASes with the most downloads ("AS X" and "AS Y").
pub fn top_two_ases(ds: &TraceDataset) -> Vec<AsNumber> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for d in &ds.downloads {
        *counts.entry(d.asn.0).or_insert(0) += 1;
    }
    let mut v: Vec<(u32, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.into_iter().take(2).map(|(a, _)| AsNumber(a)).collect()
}

/// Fig 4 for one AS.
pub fn fig4_for_as(ds: &TraceDataset, asn: AsNumber) -> AsSpeeds {
    let mut edge = Vec::new();
    let mut p2p = Vec::new();
    let mut n = 0;
    for d in ds
        .downloads
        .iter()
        .filter(|d| d.asn == asn && d.outcome == DownloadOutcome::Completed)
    {
        n += 1;
        let mbps = d.mean_speed().as_mbps();
        if mbps <= 0.0 {
            continue;
        }
        if d.is_edge_only() {
            edge.push(mbps);
        } else if d.is_mostly_p2p() {
            p2p.push(mbps);
        }
    }
    AsSpeeds {
        asn,
        downloads: n,
        edge_only: Cdf::from_values(edge),
        mostly_p2p: Cdf::from_values(p2p),
    }
}

/// Fig 4 for the top two ASes.
pub fn fig4(ds: &TraceDataset) -> Vec<AsSpeeds> {
    top_two_ases(ds)
        .into_iter()
        .map(|a| fig4_for_as(ds, a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{CpCode, Guid, ObjectId};
    use netsession_core::time::{SimDuration, SimTime};
    use netsession_core::units::ByteCount;
    use netsession_logs::records::DownloadRecord;

    fn dl(asn: u32, infra: u64, peers: u64, secs: u64) -> DownloadRecord {
        DownloadRecord {
            guid: Guid(1),
            object: ObjectId(1),
            cp: CpCode(1),
            size: ByteCount(infra + peers),
            p2p_enabled: peers > 0,
            started: SimTime(0),
            ended: SimTime::ZERO + SimDuration::from_secs(secs),
            bytes_infra: ByteCount(infra),
            bytes_peers: ByteCount(peers),
            outcome: DownloadOutcome::Completed,
            initial_peers: 0,
            asn: AsNumber(asn),
            country: 0,
            region: 0,
        }
    }

    #[test]
    fn top_ases_by_download_count() {
        let mut ds = TraceDataset::default();
        for _ in 0..5 {
            ds.downloads.push(dl(100, 10, 0, 1));
        }
        for _ in 0..3 {
            ds.downloads.push(dl(200, 10, 0, 1));
        }
        ds.downloads.push(dl(300, 10, 0, 1));
        assert_eq!(top_two_ases(&ds), vec![AsNumber(100), AsNumber(200)]);
    }

    #[test]
    fn classes_are_split_correctly() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(100, 1_000_000, 0, 1)); // edge only, 8 Mbps
        ds.downloads.push(dl(100, 250_000, 750_000, 1)); // 75% p2p
        ds.downloads.push(dl(100, 600_000, 400_000, 1)); // 40% p2p: excluded
        let speeds = fig4_for_as(&ds, AsNumber(100));
        assert_eq!(speeds.edge_only.len(), 1);
        assert_eq!(speeds.mostly_p2p.len(), 1);
        assert_eq!(speeds.downloads, 3);
        assert!((speeds.edge_only.median() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_downloads_excluded() {
        let mut ds = TraceDataset::default();
        let mut d = dl(100, 1_000_000, 0, 1);
        d.outcome = DownloadOutcome::Abandoned;
        ds.downloads.push(d);
        let speeds = fig4_for_as(&ds, AsNumber(100));
        assert_eq!(speeds.downloads, 0);
        assert!(speeds.edge_only.is_empty());
    }
}
