//! # netsession-analytics
//!
//! The measurement-study toolbox: every analysis in §4–§6 of the paper,
//! implemented over the [`TraceDataset`](netsession_logs::TraceDataset) the
//! simulation (or, in principle, a real deployment) produces.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`stats`] | CDF / percentile machinery used by every figure |
//! | [`overview`] | Table 1, §5.1 headline numbers (peer efficiency, 1.7 %/57.4 % split) |
//! | [`regions`] | Table 2, Fig 2 (peer bubble data), Fig 8 (per-country byte shares) |
//! | [`settings`] | Table 3 (upload-setting changes) |
//! | [`sizes`] | Fig 3a (request-size CDFs), Fig 3b (popularity), Fig 3c (diurnal) |
//! | [`speeds`] | Fig 4 (edge-only vs ≥50 % p2p speed CDFs in the two largest ASes) |
//! | [`efficiency`] | Fig 5 (copies vs efficiency), Fig 6 (initial peers vs efficiency) |
//! | [`outcomes`] | Fig 7 (pause rate by size), §5.2 completion/failure split |
//! | [`astraffic`] | Fig 9a–c, Fig 10, Fig 11, §6.1 intra-AS and direct-link shares |
//! | [`mobility`] | §6.2 AS-count mix, distance mix, connection rate |
//! | [`guidgraph`] | Fig 12 secondary-GUID chain patterns |
//! | [`streamview`] | §5.1 headline as a streaming sink (million-peer runs) |
//! | [`timeseries`] | diurnal folds, peaks/troughs, anomaly ranking over windowed telemetry |

pub mod astraffic;
pub mod efficiency;
pub mod guidgraph;
pub mod mobility;
pub mod outcomes;
pub mod overview;
pub mod regions;
pub mod settings;
pub mod sizes;
pub mod speeds;
pub mod stats;
pub mod streamview;
pub mod timeseries;

pub use stats::Cdf;
