//! §5.2 reliability and Fig 7 pause rates.

use netsession_logs::records::DownloadOutcome;
use netsession_logs::TraceDataset;

/// The §5.2 outcome split for one download class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OutcomeRates {
    /// Downloads in the class.
    pub total: u64,
    /// Fraction completed (paper: 94 % infra-only, 92 % peer-assisted).
    pub completed: f64,
    /// Fraction failed for system-related causes (0.1 % / 0.2 %).
    pub failed_system: f64,
    /// Fraction failed for other causes.
    pub failed_other: f64,
    /// Fraction paused/aborted and never resumed (3 % / 8 %).
    pub abandoned: f64,
}

fn rates(downloads: impl Iterator<Item = DownloadOutcome>) -> OutcomeRates {
    let mut r = OutcomeRates::default();
    let mut completed = 0u64;
    let mut fs = 0u64;
    let mut fo = 0u64;
    let mut ab = 0u64;
    for o in downloads {
        r.total += 1;
        match o {
            DownloadOutcome::Completed => completed += 1,
            DownloadOutcome::Failed {
                system_related: true,
            } => fs += 1,
            DownloadOutcome::Failed {
                system_related: false,
            } => fo += 1,
            DownloadOutcome::Abandoned => ab += 1,
        }
    }
    if r.total > 0 {
        let t = r.total as f64;
        r.completed = completed as f64 / t;
        r.failed_system = fs as f64 / t;
        r.failed_other = fo as f64 / t;
        r.abandoned = ab as f64 / t;
    }
    r
}

/// §5.2: outcome rates for infrastructure-only vs peer-assisted downloads.
pub fn outcome_split(ds: &TraceDataset) -> (OutcomeRates, OutcomeRates) {
    let infra = rates(
        ds.downloads
            .iter()
            .filter(|d| !d.p2p_enabled)
            .map(|d| d.outcome),
    );
    let p2p = rates(
        ds.downloads
            .iter()
            .filter(|d| d.p2p_enabled)
            .map(|d| d.outcome),
    );
    (infra, p2p)
}

/// Fig 7's size buckets.
pub const SIZE_BUCKETS: [(&str, u64, u64); 4] = [
    ("<10MB", 0, 10_000_000),
    ("10-100MB", 10_000_000, 100_000_000),
    ("100MB-1GB", 100_000_000, 1_000_000_000),
    (">1GB", 1_000_000_000, u64::MAX),
];

/// One Fig 7 bar group: pause (abandonment) rate per class in a size
/// bucket.
#[derive(Clone, Debug)]
pub struct PauseRateBucket {
    /// Bucket label.
    pub label: &'static str,
    /// Pause rate of infra-only downloads in the bucket (%).
    pub infra_only: f64,
    /// Pause rate of peer-assisted downloads (%).
    pub peer_assisted: f64,
    /// Pause rate of all downloads (%).
    pub all: f64,
    /// Downloads in the bucket.
    pub total: u64,
}

/// Fig 7: pause rates by object size bucket.
pub fn fig7(ds: &TraceDataset) -> Vec<PauseRateBucket> {
    SIZE_BUCKETS
        .iter()
        .map(|(label, lo, hi)| {
            let in_bucket = |d: &&netsession_logs::records::DownloadRecord| {
                d.size.bytes() >= *lo && d.size.bytes() < *hi
            };
            let pause_rate = |p2p: Option<bool>| {
                let mut total = 0u64;
                let mut paused = 0u64;
                for d in ds.downloads.iter().filter(in_bucket) {
                    if let Some(want) = p2p {
                        if d.p2p_enabled != want {
                            continue;
                        }
                    }
                    total += 1;
                    if d.outcome == DownloadOutcome::Abandoned {
                        paused += 1;
                    }
                }
                if total == 0 {
                    (0.0, 0)
                } else {
                    (paused as f64 / total as f64 * 100.0, total)
                }
            };
            let (infra, _) = pause_rate(Some(false));
            let (p2p, _) = pause_rate(Some(true));
            let (all, total) = pause_rate(None);
            PauseRateBucket {
                label,
                infra_only: infra,
                peer_assisted: p2p,
                all,
                total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
    use netsession_core::time::SimTime;
    use netsession_core::units::ByteCount;
    use netsession_logs::records::DownloadRecord;

    fn dl(p2p: bool, size: u64, outcome: DownloadOutcome) -> DownloadRecord {
        DownloadRecord {
            guid: Guid(1),
            object: ObjectId(1),
            cp: CpCode(1),
            size: ByteCount(size),
            p2p_enabled: p2p,
            started: SimTime(0),
            ended: SimTime(1),
            bytes_infra: ByteCount(size / 2),
            bytes_peers: ByteCount(0),
            outcome,
            initial_peers: 0,
            asn: AsNumber(1),
            country: 0,
            region: 0,
        }
    }

    #[test]
    fn outcome_split_computes_rates() {
        let mut ds = TraceDataset::default();
        for _ in 0..9 {
            ds.downloads.push(dl(false, 10, DownloadOutcome::Completed));
        }
        ds.downloads.push(dl(false, 10, DownloadOutcome::Abandoned));
        ds.downloads.push(dl(true, 10, DownloadOutcome::Completed));
        ds.downloads.push(dl(
            true,
            10,
            DownloadOutcome::Failed {
                system_related: true,
            },
        ));
        let (infra, p2p) = outcome_split(&ds);
        assert_eq!(infra.total, 10);
        assert!((infra.completed - 0.9).abs() < 1e-9);
        assert!((infra.abandoned - 0.1).abs() < 1e-9);
        assert_eq!(p2p.total, 2);
        assert!((p2p.failed_system - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fig7_pause_rates_by_size() {
        let mut ds = TraceDataset::default();
        // Small files: no pauses.
        for _ in 0..10 {
            ds.downloads
                .push(dl(false, 1_000_000, DownloadOutcome::Completed));
        }
        // Huge files: half paused.
        for i in 0..10 {
            let outcome = if i % 2 == 0 {
                DownloadOutcome::Abandoned
            } else {
                DownloadOutcome::Completed
            };
            ds.downloads.push(dl(true, 2_000_000_000, outcome));
        }
        let buckets = fig7(&ds);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].all, 0.0);
        assert!((buckets[3].all - 50.0).abs() < 1e-9);
        assert!((buckets[3].peer_assisted - 50.0).abs() < 1e-9);
        assert_eq!(buckets[3].total, 10);
        assert!(buckets[3].all > buckets[0].all, "rate grows with size");
    }

    #[test]
    fn empty_dataset_gives_zero_rates() {
        let (infra, p2p) = outcome_split(&TraceDataset::default());
        assert_eq!(infra.total, 0);
        assert_eq!(p2p.completed, 0.0);
    }
}
