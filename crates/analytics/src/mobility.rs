//! §6.2 mobility analyses.
//!
//! "80.6 % of the GUIDs connected from a single AS, 13.4 % from two
//! different ASes, and 6 % from more than two… we computed for each GUID
//! the two geolocations that were farthest apart. We found that 77 %
//! remained within 10 km… on average, the control plane receives 20,922
//! new connections per minute."

use netsession_logs::TraceDataset;
use std::collections::{HashMap, HashSet};

/// Summary of the mobility analyses.
#[derive(Clone, Debug)]
pub struct MobilitySummary {
    /// GUIDs observed.
    pub guids: u64,
    /// Fraction connecting from exactly one AS.
    pub single_as: f64,
    /// Fraction from exactly two ASes.
    pub two_as: f64,
    /// Fraction from more than two.
    pub more_as: f64,
    /// Fraction whose farthest login pair is within 10 km.
    pub within_10km: f64,
    /// Mean new control-plane connections per minute.
    pub connections_per_minute: f64,
}

fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const R: f64 = 6371.0;
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * R * a.sqrt().atan2((1.0 - a).sqrt())
}

/// Compute the §6.2 summary from login records.
pub fn summarize(ds: &TraceDataset) -> MobilitySummary {
    let mut ases: HashMap<u128, HashSet<u32>> = HashMap::new();
    let mut locations: HashMap<u128, Vec<(f64, f64)>> = HashMap::new();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for l in &ds.logins {
        ases.entry(l.guid.0).or_default().insert(l.asn.0);
        let locs = locations.entry(l.guid.0).or_default();
        if !locs.iter().any(|(a, b)| *a == l.lat && *b == l.lon) {
            locs.push((l.lat, l.lon));
        }
        t_min = t_min.min(l.at.as_micros());
        t_max = t_max.max(l.at.as_micros());
    }
    let guids = ases.len() as u64;
    if guids == 0 {
        return MobilitySummary {
            guids: 0,
            single_as: 0.0,
            two_as: 0.0,
            more_as: 0.0,
            within_10km: 0.0,
            connections_per_minute: 0.0,
        };
    }
    let count = |pred: &dyn Fn(usize) -> bool| {
        ases.values().filter(|s| pred(s.len())).count() as f64 / guids as f64
    };
    // Farthest pair per GUID (locations per GUID are few).
    let near = locations
        .values()
        .filter(|locs| {
            let mut max = 0.0f64;
            for i in 0..locs.len() {
                for j in (i + 1)..locs.len() {
                    max = max.max(haversine_km(locs[i].0, locs[i].1, locs[j].0, locs[j].1));
                }
            }
            max <= 10.0
        })
        .count() as f64
        / guids as f64;
    let minutes = ((t_max.saturating_sub(t_min)) as f64 / 60e6).max(1.0);
    MobilitySummary {
        guids,
        single_as: count(&|n| n == 1),
        two_as: count(&|n| n == 2),
        more_as: count(&|n| n > 2),
        within_10km: near,
        connections_per_minute: ds.logins.len() as f64 / minutes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, Guid};
    use netsession_core::time::SimTime;
    use netsession_logs::records::LoginRecord;

    fn login(guid: u128, asn: u32, lat: f64, lon: f64, at: u64) -> LoginRecord {
        LoginRecord {
            at: SimTime(at),
            guid: Guid(guid),
            ip: 1,
            asn: AsNumber(asn),
            country: 0,
            lat,
            lon,
            uploads_enabled: true,
            software_version: 1,
            secondary_guids: vec![],
        }
    }

    #[test]
    fn as_mix_and_distance() {
        let mut ds = TraceDataset::default();
        // GUID 1: one AS, one place.
        ds.logins.push(login(1, 10, 40.0, -75.0, 0));
        ds.logins.push(login(1, 10, 40.0, -75.0, 60_000_000));
        // GUID 2: two ASes, far apart (Philadelphia → Barcelona).
        ds.logins.push(login(2, 10, 39.95, -75.16, 0));
        ds.logins.push(login(2, 20, 41.39, 2.17, 60_000_000));
        // GUID 3: three ASes, same city.
        ds.logins.push(login(3, 1, 52.52, 13.40, 0));
        ds.logins.push(login(3, 2, 52.52, 13.40, 1));
        ds.logins.push(login(3, 3, 52.52, 13.40, 2));
        let s = summarize(&ds);
        assert_eq!(s.guids, 3);
        assert!((s.single_as - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.two_as - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.more_as - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.within_10km - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn connection_rate_uses_trace_span() {
        let mut ds = TraceDataset::default();
        for i in 0..120u64 {
            ds.logins.push(login(i as u128, 1, 0.0, 0.0, i * 1_000_000));
        }
        let s = summarize(&ds);
        // 120 logins over ~2 minutes.
        assert!((s.connections_per_minute - 60.0).abs() < 5.0);
    }

    #[test]
    fn empty_dataset() {
        let s = summarize(&TraceDataset::default());
        assert_eq!(s.guids, 0);
    }
}
