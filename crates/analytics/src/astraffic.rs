//! §6.1: do ISPs suffer from NetSession?
//!
//! Builds the (N, AS1, AS2) flow aggregation the paper describes, then
//! derives Fig 9a (inter-AS upload CDF), Fig 9b (cumulative contribution),
//! Fig 9c (IPs per AS, light vs heavy), Fig 10 (per-AS up/down scatter),
//! Fig 11 (pairwise balance among directly connected heavy uploaders), and
//! the headline intra-AS share.

use crate::stats::Cdf;
use netsession_core::id::AsNumber;
use netsession_logs::TraceDataset;
use std::collections::{HashMap, HashSet};

/// Aggregated AS-level traffic view.
pub struct AsTraffic {
    /// Inter-AS bytes uploaded per AS.
    pub uploaded: HashMap<u32, u64>,
    /// Inter-AS bytes downloaded per AS.
    pub downloaded: HashMap<u32, u64>,
    /// Bytes per ordered AS pair (from, to), inter-AS only.
    pub pair_bytes: HashMap<(u32, u32), u64>,
    /// Total p2p bytes (intra + inter).
    pub total_bytes: u64,
    /// Intra-AS bytes.
    pub intra_bytes: u64,
    /// Distinct IPs observed per AS (from the geo DB).
    pub ips_per_as: HashMap<u32, u64>,
}

/// Build the AS traffic view from transfer records and the geo DB.
pub fn build(ds: &TraceDataset) -> AsTraffic {
    let mut t = AsTraffic {
        uploaded: HashMap::new(),
        downloaded: HashMap::new(),
        pair_bytes: HashMap::new(),
        total_bytes: 0,
        intra_bytes: 0,
        ips_per_as: HashMap::new(),
    };
    for rec in &ds.transfers {
        let b = rec.bytes.bytes();
        t.total_bytes += b;
        if rec.intra_as() {
            t.intra_bytes += b;
            continue;
        }
        *t.uploaded.entry(rec.from_as.0).or_insert(0) += b;
        *t.downloaded.entry(rec.to_as.0).or_insert(0) += b;
        *t.pair_bytes
            .entry((rec.from_as.0, rec.to_as.0))
            .or_insert(0) += b;
    }
    // Distinct IPs per AS: count from logins (observed IPs), the closest
    // analogue of Fig 9c's "IP addresses observed in AS".
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for l in &ds.logins {
        if seen.insert((l.asn.0, l.ip)) {
            *t.ips_per_as.entry(l.asn.0).or_insert(0) += 1;
        }
    }
    t
}

impl AsTraffic {
    /// Fraction of p2p bytes that stayed inside one AS (paper: 18 %).
    pub fn intra_as_share(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.intra_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Fig 9a: CDF of inter-AS bytes uploaded per AS (ASes that uploaded
    /// nothing are included as zero, as in the paper: "roughly half of the
    /// ASes did not send any inter-AS bytes at all"). `all_ases` is the
    /// universe of ASes with peers.
    pub fn fig9a(&self, all_ases: impl IntoIterator<Item = AsNumber>) -> Cdf {
        let values: Vec<f64> = all_ases
            .into_iter()
            .map(|a| self.uploaded.get(&a.0).copied().unwrap_or(0) as f64)
            .collect();
        Cdf::from_values(values)
    }

    /// Fig 9b: points (x = per-AS upload bytes, y = cumulative share of
    /// total inter-AS bytes contributed by ASes uploading ≤ x).
    pub fn fig9b(&self) -> Vec<(f64, f64)> {
        let mut uploads: Vec<u64> = self.uploaded.values().copied().collect();
        uploads.sort_unstable();
        let total: u64 = uploads.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        uploads
            .into_iter()
            .map(|u| {
                acc += u;
                (u as f64, acc as f64 / total as f64 * 100.0)
            })
            .collect()
    }

    /// The heavy-uploader set: the top `frac` (e.g. 0.02) of ASes by
    /// inter-AS upload bytes — the paper's "2 % of ASes contributed 90 % of
    /// the bytes".
    pub fn heavy_uploaders(&self, frac: f64) -> HashSet<u32> {
        let mut v: Vec<(u32, u64)> = self.uploaded.iter().map(|(a, b)| (*a, *b)).collect();
        // Tie-break on the AS number so the heavy set is deterministic.
        v.sort_by_key(|(asn, b)| (std::cmp::Reverse(*b), *asn));
        let n = ((v.len() as f64 * frac).ceil() as usize)
            .max(1)
            .min(v.len());
        v.into_iter().take(n).map(|(a, _)| a).collect()
    }

    /// Share of inter-AS bytes contributed by the heavy set.
    pub fn heavy_share(&self, heavy: &HashSet<u32>) -> f64 {
        let total: u64 = self.uploaded.values().sum();
        if total == 0 {
            return 0.0;
        }
        let h: u64 = self
            .uploaded
            .iter()
            .filter(|(a, _)| heavy.contains(a))
            .map(|(_, b)| *b)
            .sum();
        h as f64 / total as f64
    }

    /// Fig 9c: distinct-IP counts for light vs heavy uploader ASes.
    pub fn fig9c(&self, heavy: &HashSet<u32>) -> (Cdf, Cdf) {
        let mut light = Vec::new();
        let mut heavy_ips = Vec::new();
        for (a, ips) in &self.ips_per_as {
            if heavy.contains(a) {
                heavy_ips.push(*ips as f64);
            } else {
                light.push(*ips as f64);
            }
        }
        (Cdf::from_values(light), Cdf::from_values(heavy_ips))
    }

    /// Fig 10 scatter: (uploaded, downloaded, is_heavy) per AS that moved
    /// any inter-AS bytes.
    pub fn fig10(&self, heavy: &HashSet<u32>) -> Vec<(u64, u64, bool)> {
        let mut ases: HashSet<u32> = self.uploaded.keys().copied().collect();
        ases.extend(self.downloaded.keys().copied());
        let mut out: Vec<(u64, u64, bool)> = ases
            .into_iter()
            .map(|a| {
                (
                    self.uploaded.get(&a).copied().unwrap_or(0),
                    self.downloaded.get(&a).copied().unwrap_or(0),
                    heavy.contains(&a),
                )
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Balance ratio per heavy AS: uploaded / downloaded (only ASes with
    /// both directions nonzero).
    pub fn heavy_balance_ratios(&self, heavy: &HashSet<u32>) -> Vec<f64> {
        heavy
            .iter()
            .filter_map(|a| {
                let up = self.uploaded.get(a).copied().unwrap_or(0);
                let down = self.downloaded.get(a).copied().unwrap_or(0);
                (up > 0 && down > 0).then(|| up as f64 / down as f64)
            })
            .collect()
    }

    /// Fig 11: pairwise (A→B, B→A) byte pairs among heavy uploaders that
    /// are directly connected per `direct`, each unordered pair once.
    pub fn fig11(
        &self,
        heavy: &HashSet<u32>,
        direct: impl Fn(AsNumber, AsNumber) -> bool,
    ) -> Vec<(u64, u64)> {
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut out = Vec::new();
        for (a, b) in self.pair_bytes.keys() {
            if !heavy.contains(a) || !heavy.contains(b) {
                continue;
            }
            // Canonical orientation (lower AS number first) so the output
            // is independent of hash-map iteration order.
            let key = if a < b { (*a, *b) } else { (*b, *a) };
            if !seen.insert(key) {
                continue;
            }
            if !direct(AsNumber(key.0), AsNumber(key.1)) {
                continue;
            }
            let ab = self.pair_bytes.get(&(key.0, key.1)).copied().unwrap_or(0);
            let ba = self.pair_bytes.get(&(key.1, key.0)).copied().unwrap_or(0);
            out.push((ab, ba));
        }
        out.sort_unstable();
        out
    }

    /// §6.1 estimate: fraction of heavy-pair inter-AS bytes exchanged
    /// between directly connected ASes (paper: ~35 %).
    pub fn direct_link_share(
        &self,
        heavy: &HashSet<u32>,
        direct: impl Fn(AsNumber, AsNumber) -> bool,
    ) -> f64 {
        let mut total = 0u64;
        let mut on_direct = 0u64;
        for ((a, b), bytes) in &self.pair_bytes {
            if !heavy.contains(a) || !heavy.contains(b) {
                continue;
            }
            total += bytes;
            if direct(AsNumber(*a), AsNumber(*b)) {
                on_direct += bytes;
            }
        }
        if total == 0 {
            0.0
        } else {
            on_direct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{Guid, ObjectId};
    use netsession_core::units::ByteCount;
    use netsession_logs::records::TransferRecord;

    fn xfer(from: u32, to: u32, bytes: u64) -> TransferRecord {
        TransferRecord {
            from_guid: Guid(1),
            to_guid: Guid(2),
            from_as: AsNumber(from),
            to_as: AsNumber(to),
            from_country: 0,
            to_country: 0,
            bytes: ByteCount(bytes),
            object: ObjectId(1),
        }
    }

    fn dataset() -> TraceDataset {
        let mut ds = TraceDataset::default();
        ds.transfers.push(xfer(1, 1, 100)); // intra
        ds.transfers.push(xfer(1, 2, 400));
        ds.transfers.push(xfer(2, 1, 380));
        ds.transfers.push(xfer(3, 2, 20));
        ds
    }

    #[test]
    fn build_aggregates_and_intra_share() {
        let t = build(&dataset());
        assert_eq!(t.total_bytes, 900);
        assert_eq!(t.intra_bytes, 100);
        assert!((t.intra_as_share() - 100.0 / 900.0).abs() < 1e-9);
        assert_eq!(t.uploaded[&1], 400);
        assert_eq!(t.downloaded[&2], 420);
        assert_eq!(t.pair_bytes[&(2, 1)], 380);
    }

    #[test]
    fn fig9a_includes_silent_ases() {
        let t = build(&dataset());
        let cdf = t.fig9a([AsNumber(1), AsNumber(2), AsNumber(3), AsNumber(99)]);
        assert_eq!(cdf.len(), 4);
        // AS 99 uploaded nothing.
        assert!(cdf.fraction_at(0.0) >= 0.25);
    }

    #[test]
    fn fig9b_cumulative_reaches_100() {
        let t = build(&dataset());
        let curve = t.fig9b();
        assert!((curve.last().unwrap().1 - 100.0).abs() < 1e-9);
        // Monotone.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn heavy_set_and_balance() {
        let t = build(&dataset());
        let heavy = t.heavy_uploaders(0.67); // top 2 of 3 uploaders
        assert!(heavy.contains(&1) && heavy.contains(&2));
        assert!(t.heavy_share(&heavy) > 0.95);
        let ratios = t.heavy_balance_ratios(&heavy);
        // AS1: 400 up / 380 down ≈ 1.05; AS2: 380/420 ≈ 0.9.
        assert_eq!(ratios.len(), 2);
        for r in ratios {
            assert!(r > 0.5 && r < 2.0, "balanced heavy uploaders, got {r}");
        }
    }

    #[test]
    fn fig11_pairs_unordered_and_filtered_by_direct() {
        let t = build(&dataset());
        let heavy: HashSet<u32> = [1, 2].into_iter().collect();
        let pairs = t.fig11(&heavy, |_, _| true);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0], (400, 380));
        let none = t.fig11(&heavy, |_, _| false);
        assert!(none.is_empty());
    }

    #[test]
    fn direct_link_share_weights_bytes() {
        let t = build(&dataset());
        let heavy: HashSet<u32> = [1, 2, 3].into_iter().collect();
        // Only the (3,2) pair counted as direct: 20 of 800 inter-heavy.
        let share =
            t.direct_link_share(&heavy, |a, b| (a.0, b.0) == (3, 2) || (a.0, b.0) == (2, 3));
        assert!((share - 20.0 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn fig10_includes_down_only_ases() {
        let t = build(&dataset());
        let heavy = HashSet::new();
        let scatter = t.fig10(&heavy);
        assert_eq!(scatter.len(), 3);
    }
}
