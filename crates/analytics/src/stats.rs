//! Statistical primitives shared by every analysis.

/// An empirical CDF over f64 samples.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are dropped).
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|v| *v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100), by nearest-rank.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of empty CDF");
        let rank =
            ((p / 100.0 * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Evaluate at log-spaced x positions between the min and max sample —
    /// the standard way the paper's log-x CDF plots are drawn.
    pub fn log_curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0].max(1e-12);
        let hi = self.sorted[self.sorted.len() - 1].max(lo * 1.0001);
        let l0 = lo.ln();
        let l1 = hi.ln();
        (0..points)
            .map(|i| {
                let x = (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp();
                (x, self.fraction_at(x))
            })
            .collect()
    }
}

/// Mean of an iterator of f64 (0 for empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Group values into buckets keyed by `key`, then apply `agg` per bucket;
/// returns buckets sorted by key.
pub fn group_by<K: Ord + Copy, V, A>(
    items: impl IntoIterator<Item = (K, V)>,
    agg: impl Fn(&[V]) -> A,
) -> Vec<(K, A)> {
    let mut map: std::collections::BTreeMap<K, Vec<V>> = std::collections::BTreeMap::new();
    for (k, v) in items {
        map.entry(k).or_default().push(v);
    }
    map.into_iter().map(|(k, vs)| (k, agg(&vs))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions_and_percentiles() {
        let c = Cdf::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(2.0), 0.5);
        assert_eq!(c.fraction_at(10.0), 1.0);
        assert_eq!(c.percentile(50.0), 2.0);
        assert_eq!(c.percentile(100.0), 4.0);
        assert_eq!(c.percentile(1.0), 1.0);
        assert_eq!(c.median(), 2.0);
        assert!((c.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_drops_nans() {
        let c = Cdf::from_values(vec![f64::NAN, 1.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn log_curve_is_monotone() {
        let c = Cdf::from_values((1..1000).map(|i| i as f64).collect());
        let curve = c.log_curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn group_by_sorts_and_aggregates() {
        let items = vec![(2, 10.0), (1, 1.0), (2, 20.0)];
        let grouped = group_by(items, |vs: &[f64]| vs.iter().sum::<f64>());
        assert_eq!(grouped, vec![(1, 1.0), (2, 30.0)]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(Vec::<f64>::new()), 0.0);
        assert_eq!(mean(vec![2.0, 4.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        Cdf::from_values(vec![]).percentile(50.0);
    }
}
