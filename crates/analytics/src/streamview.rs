//! Summary-from-stream: the §5.1 headline computed as a [`RecordSink`].
//!
//! [`overview::headline`](crate::overview::headline) needs the whole
//! [`TraceDataset`] in RAM; at the paper's scale (4.6B log entries) that is
//! exactly what the streaming sinks in `netsession-logs` exist to avoid.
//! [`StreamHeadline`] maintains the same aggregates record-by-record in
//! O(distinct GUIDs + distinct objects) memory, and [`merge`]s across
//! shards, so the sharded million-peer runner can report Table-1/§5.1
//! numbers without ever materializing its logs.
//!
//! Replaying an in-RAM dataset through the sink ([`replay`]) reproduces the
//! batch numbers *bit-identically* — floating-point sums are accumulated in
//! the same record order the batch path iterates — which is how the tests
//! pin stream-vs-batch equivalence.
//!
//! [`merge`]: StreamHeadline::merge

use crate::overview::Headline;
use netsession_core::fxhash::{FxHashMap, FxHashSet};
use netsession_logs::records::{DownloadOutcome, DownloadRecord, LoginRecord, TransferRecord};
use netsession_logs::sink::RecordSink;
use netsession_logs::TraceDataset;

/// Incremental §5.1 headline state.
///
/// Mirrors the batch pass in [`crate::overview::headline`] field for field;
/// anything added there must be added here (the equivalence test fails
/// loudly if the two drift).
#[derive(Clone, Debug, Default)]
pub struct StreamHeadline {
    /// Last-login upload setting per GUID: (micros, enabled).
    last_setting: FxHashMap<u128, (u64, bool)>,
    p2p_files: FxHashSet<u64>,
    all_files: FxHashSet<u64>,
    p2p_bytes: u64,
    total_bytes: u64,
    /// Running sum/count of per-download peer efficiency over completed
    /// p2p-enabled downloads (mean in emission order, like the batch path).
    efficiency_sum: f64,
    efficiency_n: u64,
    peer_bytes_in_p2p: u64,
    total_bytes_in_p2p: u64,
}

impl StreamHeadline {
    /// Fresh, empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another shard's state into this one. Counters add, distinct
    /// sets union, and per-GUID last-login settings resolve to the later
    /// timestamp (ties keep `self`, matching the batch path's `>=` update
    /// rule under shard-index merge order).
    pub fn merge(&mut self, other: &StreamHeadline) {
        for (guid, &(at, enabled)) in &other.last_setting {
            let e = self.last_setting.entry(*guid).or_insert((at, enabled));
            if at > e.0 {
                *e = (at, enabled);
            }
        }
        self.p2p_files.extend(other.p2p_files.iter().copied());
        self.all_files.extend(other.all_files.iter().copied());
        self.p2p_bytes += other.p2p_bytes;
        self.total_bytes += other.total_bytes;
        self.efficiency_sum += other.efficiency_sum;
        self.efficiency_n += other.efficiency_n;
        self.peer_bytes_in_p2p += other.peer_bytes_in_p2p;
        self.total_bytes_in_p2p += other.total_bytes_in_p2p;
    }

    /// The headline aggregates seen so far.
    pub fn headline(&self) -> Headline {
        let enabled_fraction = if self.last_setting.is_empty() {
            0.0
        } else {
            self.last_setting.values().filter(|(_, e)| *e).count() as f64
                / self.last_setting.len() as f64
        };
        Headline {
            enabled_fraction,
            p2p_file_fraction: if self.all_files.is_empty() {
                0.0
            } else {
                self.p2p_files.len() as f64 / self.all_files.len() as f64
            },
            p2p_byte_share: if self.total_bytes == 0 {
                0.0
            } else {
                self.p2p_bytes as f64 / self.total_bytes as f64
            },
            mean_peer_efficiency: if self.efficiency_n == 0 {
                0.0
            } else {
                self.efficiency_sum / self.efficiency_n as f64
            },
            offload_fraction: if self.total_bytes_in_p2p == 0 {
                0.0
            } else {
                self.peer_bytes_in_p2p as f64 / self.total_bytes_in_p2p as f64
            },
        }
    }
}

impl RecordSink for StreamHeadline {
    fn on_download(&mut self, r: &DownloadRecord) {
        self.all_files.insert(r.object.0);
        let bytes = r.total_bytes().bytes();
        self.total_bytes += bytes;
        if r.p2p_enabled {
            self.p2p_files.insert(r.object.0);
            self.p2p_bytes += bytes;
            if r.outcome == DownloadOutcome::Completed {
                self.efficiency_sum += r.peer_efficiency();
                self.efficiency_n += 1;
                self.peer_bytes_in_p2p += r.bytes_peers.bytes();
                self.total_bytes_in_p2p += bytes;
            }
        }
    }

    fn on_login(&mut self, r: &LoginRecord) {
        let e = self
            .last_setting
            .entry(r.guid.0)
            .or_insert((0, r.uploads_enabled));
        if r.at.as_micros() >= e.0 {
            *e = (r.at.as_micros(), r.uploads_enabled);
        }
    }

    fn on_transfer(&mut self, _r: &TransferRecord) {}
}

/// Feed an in-RAM dataset through any sink in emission order (logins,
/// downloads, transfers, registrations — the order the dataset stores and
/// the batch analytics iterate).
pub fn replay(ds: &TraceDataset, sink: &mut impl RecordSink) {
    for l in &ds.logins {
        sink.on_login(l);
    }
    for d in &ds.downloads {
        sink.on_download(d);
    }
    for t in &ds.transfers {
        sink.on_transfer(t);
    }
    for &(version, cumulative) in &ds.registrations {
        sink.on_registration(version, cumulative);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overview;
    use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
    use netsession_core::rng::DetRng;
    use netsession_core::time::SimTime;
    use netsession_core::units::ByteCount;

    fn synthetic_dataset(seed: u64, n: usize) -> TraceDataset {
        let mut rng = DetRng::seeded(seed);
        let mut ds = TraceDataset::default();
        for i in 0..n {
            let guid = rng.below(40) as u128;
            ds.logins.push(LoginRecord {
                at: SimTime(rng.below(1_000_000)),
                guid: Guid(guid),
                ip: rng.below(1 << 20) as u32,
                asn: AsNumber(rng.below(500) as u32),
                country: rng.below(50) as u16,
                lat: 0.0,
                lon: 0.0,
                uploads_enabled: rng.chance(0.3),
                software_version: 1,
                secondary_guids: Vec::new(),
            });
            let infra = rng.below(1 << 20);
            let peers = if rng.chance(0.6) {
                rng.below(1 << 21)
            } else {
                0
            };
            ds.downloads.push(DownloadRecord {
                guid: Guid(guid),
                object: ObjectId(rng.below(25)),
                cp: CpCode(1),
                size: ByteCount(infra + peers),
                p2p_enabled: rng.chance(0.5),
                started: SimTime(i as u64),
                ended: SimTime(i as u64 + 10),
                bytes_infra: ByteCount(infra),
                bytes_peers: ByteCount(peers),
                outcome: if rng.chance(0.8) {
                    DownloadOutcome::Completed
                } else {
                    DownloadOutcome::Abandoned
                },
                initial_peers: rng.below(5) as u32,
                asn: AsNumber(1),
                country: 0,
                region: 0,
            });
        }
        ds
    }

    /// The streamed headline must equal the batch one bit-for-bit when fed
    /// the same records in the same order.
    #[test]
    fn stream_matches_batch_bitwise() {
        for seed in 0..8u64 {
            let ds = synthetic_dataset(seed, 600);
            let batch = overview::headline(&ds);
            let mut sink = StreamHeadline::new();
            replay(&ds, &mut sink);
            let streamed = sink.headline();
            assert_eq!(batch.enabled_fraction, streamed.enabled_fraction);
            assert_eq!(batch.p2p_file_fraction, streamed.p2p_file_fraction);
            assert_eq!(batch.p2p_byte_share, streamed.p2p_byte_share);
            assert_eq!(batch.mean_peer_efficiency, streamed.mean_peer_efficiency);
            assert_eq!(batch.offload_fraction, streamed.offload_fraction);
        }
    }

    /// Sharded: splitting the record stream by GUID, summarizing each part
    /// independently, and merging must agree with the single-sink pass on
    /// every count-derived field (float sums may legitimately reassociate).
    #[test]
    fn sharded_merge_matches_single_sink() {
        let ds = synthetic_dataset(99, 600);
        let mut whole = StreamHeadline::new();
        replay(&ds, &mut whole);

        let mut shards = vec![
            StreamHeadline::new(),
            StreamHeadline::new(),
            StreamHeadline::new(),
        ];
        for l in &ds.logins {
            shards[(l.guid.0 % 3) as usize].on_login(l);
        }
        for d in &ds.downloads {
            shards[(d.guid.0 % 3) as usize].on_download(d);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }

        let a = whole.headline();
        let b = merged.headline();
        assert_eq!(a.enabled_fraction, b.enabled_fraction);
        assert_eq!(a.p2p_file_fraction, b.p2p_file_fraction);
        assert_eq!(a.p2p_byte_share, b.p2p_byte_share);
        assert_eq!(a.offload_fraction, b.offload_fraction);
        assert!((a.mean_peer_efficiency - b.mean_peer_efficiency).abs() < 1e-12);
    }
}
