//! Fig 5 and Fig 6: what peer efficiency depends on.

use crate::stats::Cdf;
use netsession_logs::records::DownloadOutcome;
use netsession_logs::TraceDataset;
use std::collections::HashMap;

/// One Fig 5 bucket: files grouped by registered-copy count (log-spaced),
/// with mean / 20th / 80th percentile of per-file average efficiency.
#[derive(Clone, Debug)]
pub struct CopiesBucket {
    /// Geometric center of the bucket (copies).
    pub copies: f64,
    /// Files in the bucket.
    pub files: usize,
    /// Mean of per-file average efficiency (%).
    pub mean: f64,
    /// 20th percentile (%).
    pub p20: f64,
    /// 80th percentile (%).
    pub p80: f64,
}

/// Fig 5: per-file average peer efficiency vs. copies registered during
/// the trace, bucketed by powers of two.
pub fn fig5(ds: &TraceDataset) -> Vec<CopiesBucket> {
    // Registrations per object.
    let mut regs: HashMap<u64, u64> = HashMap::new();
    for (v, n) in &ds.registrations {
        *regs.entry(v.object.0).or_insert(0) += n;
    }
    // Per-file average efficiency over completed p2p downloads.
    let mut eff: HashMap<u64, Vec<f64>> = HashMap::new();
    for d in ds
        .downloads
        .iter()
        .filter(|d| d.p2p_enabled && d.outcome == DownloadOutcome::Completed)
    {
        eff.entry(d.object.0).or_default().push(d.peer_efficiency());
    }
    // Bucket by log2 of registration count.
    let mut buckets: HashMap<u32, Vec<f64>> = HashMap::new();
    for (object, effs) in &eff {
        let copies = regs.get(object).copied().unwrap_or(0);
        if copies == 0 {
            continue;
        }
        let bucket = 64 - (copies.max(1)).leading_zeros();
        let file_avg = effs.iter().sum::<f64>() / effs.len() as f64;
        buckets.entry(bucket).or_default().push(file_avg * 100.0);
    }
    let mut out: Vec<CopiesBucket> = buckets
        .into_iter()
        .map(|(b, vals)| {
            let cdf = Cdf::from_values(vals.clone());
            CopiesBucket {
                copies: 2f64.powi(b as i32 - 1) * 1.5,
                files: vals.len(),
                mean: cdf.mean(),
                p20: cdf.percentile(20.0),
                p80: cdf.percentile(80.0),
            }
        })
        .collect();
    out.sort_by(|a, b| a.copies.partial_cmp(&b.copies).unwrap());
    out
}

/// One Fig 6 bucket: downloads grouped by the number of peers the control
/// plane initially returned.
#[derive(Clone, Debug)]
pub struct InitialPeersBucket {
    /// Number of peers initially returned.
    pub peers: u32,
    /// Downloads in the bucket.
    pub downloads: usize,
    /// Mean peer efficiency (%).
    pub mean: f64,
}

/// Fig 6: mean peer efficiency by initial peer-list size (0..=max).
pub fn fig6(ds: &TraceDataset) -> Vec<InitialPeersBucket> {
    let mut buckets: HashMap<u32, Vec<f64>> = HashMap::new();
    for d in ds
        .downloads
        .iter()
        .filter(|d| d.p2p_enabled && d.outcome == DownloadOutcome::Completed)
    {
        buckets
            .entry(d.initial_peers)
            .or_default()
            .push(d.peer_efficiency() * 100.0);
    }
    let mut out: Vec<InitialPeersBucket> = buckets
        .into_iter()
        .map(|(peers, vals)| InitialPeersBucket {
            peers,
            downloads: vals.len(),
            mean: vals.iter().sum::<f64>() / vals.len() as f64,
        })
        .collect();
    out.sort_by_key(|b| b.peers);
    out
}

/// The Fig 5/6 qualitative claims in one place: efficiency grows with
/// copies and with initial peers. Returns (low-copy mean, high-copy mean,
/// few-peer mean, many-peer mean) for tests and EXPERIMENTS.md.
pub fn growth_summary(ds: &TraceDataset) -> (f64, f64, f64, f64) {
    let f5 = fig5(ds);
    let lo5 = f5.first().map(|b| b.mean).unwrap_or(0.0);
    let hi5 = f5.last().map(|b| b.mean).unwrap_or(0.0);
    let f6 = fig6(ds);
    let few: Vec<f64> = f6.iter().filter(|b| b.peers <= 5).map(|b| b.mean).collect();
    let many: Vec<f64> = f6
        .iter()
        .filter(|b| b.peers >= 20)
        .map(|b| b.mean)
        .collect();
    (lo5, hi5, crate::stats::mean(few), crate::stats::mean(many))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId, VersionId};
    use netsession_core::time::SimTime;
    use netsession_core::units::ByteCount;
    use netsession_logs::records::DownloadRecord;

    fn dl(object: u64, peers_frac: f64, initial_peers: u32) -> DownloadRecord {
        let total = 1000u64;
        let peers = (total as f64 * peers_frac) as u64;
        DownloadRecord {
            guid: Guid(1),
            object: ObjectId(object),
            cp: CpCode(1),
            size: ByteCount(total),
            p2p_enabled: true,
            started: SimTime(0),
            ended: SimTime(1),
            bytes_infra: ByteCount(total - peers),
            bytes_peers: ByteCount(peers),
            outcome: DownloadOutcome::Completed,
            initial_peers,
            asn: AsNumber(1),
            country: 0,
            region: 0,
        }
    }

    fn ver(o: u64) -> VersionId {
        VersionId {
            object: ObjectId(o),
            version: 1,
        }
    }

    #[test]
    fn fig5_buckets_by_copies() {
        let mut ds = TraceDataset::default();
        ds.registrations.push((ver(1), 2)); // small swarm
        ds.registrations.push((ver(2), 2000)); // big swarm
        ds.downloads.push(dl(1, 0.1, 5));
        ds.downloads.push(dl(2, 0.9, 30));
        let buckets = fig5(&ds);
        assert_eq!(buckets.len(), 2);
        assert!(buckets[0].copies < buckets[1].copies);
        assert!(buckets[0].mean < buckets[1].mean);
        assert!(buckets[1].p20 <= buckets[1].p80);
    }

    #[test]
    fn fig5_ignores_unregistered_objects() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, 0.5, 5));
        assert!(fig5(&ds).is_empty());
    }

    #[test]
    fn fig6_groups_by_initial_peers() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, 0.2, 5));
        ds.downloads.push(dl(2, 0.8, 30));
        ds.downloads.push(dl(3, 0.9, 30));
        let buckets = fig6(&ds);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].peers, 5);
        assert_eq!(buckets[1].downloads, 2);
        assert!((buckets[1].mean - 85.0).abs() < 1e-9);
    }

    #[test]
    fn growth_summary_reflects_trends() {
        let mut ds = TraceDataset::default();
        ds.registrations.push((ver(1), 2));
        ds.registrations.push((ver(2), 5000));
        ds.downloads.push(dl(1, 0.05, 2));
        ds.downloads.push(dl(2, 0.85, 30));
        let (lo, hi, few, many) = growth_summary(&ds);
        assert!(lo < hi);
        assert!(few < many);
    }
}
