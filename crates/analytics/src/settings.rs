//! Table 3: changes to the upload-enable setting.
//!
//! "We additionally check whether users changed this setting between
//! logins, and if so, how often" (§5.1) — per GUID, order the logins and
//! count transitions of the recorded setting.

use netsession_logs::TraceDataset;
use std::collections::HashMap;

/// One Table-3 row: counts of GUIDs by number of observed changes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SettingRow {
    /// GUIDs with this initial setting.
    pub total: u64,
    /// … that never changed it.
    pub zero: u64,
    /// … that changed it exactly once.
    pub one: u64,
    /// … that changed it two or more times.
    pub two_plus: u64,
}

impl SettingRow {
    /// Fractions (zero, one, two+) of the row.
    pub fn fractions(&self) -> (f64, f64, f64) {
        if self.total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = self.total as f64;
        (
            self.zero as f64 / t,
            self.one as f64 / t,
            self.two_plus as f64 / t,
        )
    }
}

/// Table 3: (initially-disabled row, initially-enabled row).
pub fn table3(ds: &TraceDataset) -> (SettingRow, SettingRow) {
    // Collect (time, setting) per GUID.
    let mut per_guid: HashMap<u128, Vec<(u64, bool)>> = HashMap::new();
    for l in &ds.logins {
        per_guid
            .entry(l.guid.0)
            .or_default()
            .push((l.at.as_micros(), l.uploads_enabled));
    }
    let mut disabled = SettingRow::default();
    let mut enabled = SettingRow::default();
    for (_, mut logins) in per_guid {
        logins.sort_by_key(|(t, _)| *t);
        let initial = logins[0].1;
        let changes = logins.windows(2).filter(|w| w[0].1 != w[1].1).count();
        let row = if initial { &mut enabled } else { &mut disabled };
        row.total += 1;
        match changes {
            0 => row.zero += 1,
            1 => row.one += 1,
            _ => row.two_plus += 1,
        }
    }
    (disabled, enabled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, Guid};
    use netsession_core::time::SimTime;
    use netsession_logs::records::LoginRecord;

    fn login(guid: u128, at: u64, enabled: bool) -> LoginRecord {
        LoginRecord {
            at: SimTime(at),
            guid: Guid(guid),
            ip: 1,
            asn: AsNumber(1),
            country: 0,
            lat: 0.0,
            lon: 0.0,
            uploads_enabled: enabled,
            software_version: 1,
            secondary_guids: vec![],
        }
    }

    #[test]
    fn counts_changes_per_initial_setting() {
        let mut ds = TraceDataset::default();
        // GUID 1: disabled, never changes.
        ds.logins.push(login(1, 0, false));
        ds.logins.push(login(1, 10, false));
        // GUID 2: enabled, one change.
        ds.logins.push(login(2, 0, true));
        ds.logins.push(login(2, 10, false));
        // GUID 3: enabled, two changes (out of order on purpose).
        ds.logins.push(login(3, 20, true));
        ds.logins.push(login(3, 0, true));
        ds.logins.push(login(3, 10, false));
        let (dis, en) = table3(&ds);
        assert_eq!(
            dis,
            SettingRow {
                total: 1,
                zero: 1,
                one: 0,
                two_plus: 0
            }
        );
        assert_eq!(
            en,
            SettingRow {
                total: 2,
                zero: 0,
                one: 1,
                two_plus: 1
            }
        );
        let (z, o, t) = en.fractions();
        assert!((z - 0.0).abs() < 1e-9 && (o - 0.5).abs() < 1e-9 && (t - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_login_guids_count_as_zero_changes() {
        let mut ds = TraceDataset::default();
        ds.logins.push(login(1, 0, true));
        let (_, en) = table3(&ds);
        assert_eq!(en.zero, 1);
    }
}
