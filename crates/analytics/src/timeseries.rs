//! Windowed time-series analysis for the scaled runner's telemetry
//! (Fig. 2/Fig. 5-style diurnal and anomaly questions, asked of the
//! `netsession-timeseries/1` sidecar instead of raw logs).
//!
//! Deliberately representation-free: every function takes a plain
//! `&[i64]` of per-window values, so the crate needs no dependency on the
//! obs-layer series types — the `tsreport` tool extracts rows from the
//! sidecar and folds them here. All outputs are pure functions of the
//! input slice, so reports built on them stay byte-deterministic.

/// Mean value per within-day slot: fold a windowed series by
/// `window % windows_per_day`. Slot means are over however many (possibly
/// partial) days cover each slot, so a 7.5-day run still yields a full
/// profile. Returns an empty vec when either input is degenerate.
pub fn diurnal_profile(values: &[i64], windows_per_day: usize) -> Vec<f64> {
    if values.is_empty() || windows_per_day == 0 {
        return Vec::new();
    }
    let mut sum = vec![0f64; windows_per_day];
    let mut n = vec![0u64; windows_per_day];
    for (w, &v) in values.iter().enumerate() {
        sum[w % windows_per_day] += v as f64;
        n[w % windows_per_day] += 1;
    }
    sum.iter()
        .zip(&n)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

/// A series extremum: where and what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extremum {
    /// Window index.
    pub window: usize,
    /// Value at that window.
    pub value: i64,
}

/// Peak and trough of a series (first occurrence wins ties, so the result
/// is deterministic). `None` on an empty series.
pub fn peak_trough(values: &[i64]) -> Option<(Extremum, Extremum)> {
    let mut peak = Extremum {
        window: 0,
        value: *values.first()?,
    };
    let mut trough = peak;
    for (w, &v) in values.iter().enumerate().skip(1) {
        if v > peak.value {
            peak = Extremum {
                window: w,
                value: v,
            };
        }
        if v < trough.value {
            trough = Extremum {
                window: w,
                value: v,
            };
        }
    }
    Some((peak, trough))
}

/// Per-window z-scores against the series' own mean and population
/// standard deviation. A flat series (σ = 0) scores all zeros rather
/// than dividing by zero.
pub fn zscores(values: &[i64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    values
        .iter()
        .map(|&v| {
            if sd == 0.0 {
                0.0
            } else {
                (v as f64 - mean) / sd
            }
        })
        .collect()
}

/// One anomalous window: index, raw value, z-score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Anomaly {
    /// Window index.
    pub window: usize,
    /// Raw value at that window.
    pub value: i64,
    /// Z-score against the series mean.
    pub z: f64,
}

/// The `n` most anomalous windows by |z|, most anomalous first; equal
/// magnitudes order by window index, keeping the ranking deterministic.
pub fn top_anomalies(values: &[i64], n: usize) -> Vec<Anomaly> {
    let z = zscores(values);
    let mut ranked: Vec<Anomaly> = z
        .iter()
        .enumerate()
        .map(|(w, &z)| Anomaly {
            window: w,
            value: values[w],
            z,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.z.abs()
            .partial_cmp(&a.z.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.window.cmp(&b.window))
    });
    ranked.truncate(n);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_folds_by_slot_across_partial_days() {
        // Two full days plus one extra window: slot 0 has three samples.
        let values = [10, 0, 20, 0, 30];
        let prof = diurnal_profile(&values, 2);
        assert_eq!(prof, vec![20.0, 0.0]);
        assert!(diurnal_profile(&[], 2).is_empty());
        assert!(diurnal_profile(&values, 0).is_empty());
    }

    #[test]
    fn peak_and_trough_take_the_first_of_equals() {
        let (peak, trough) = peak_trough(&[3, 9, 1, 9, 1]).unwrap();
        assert_eq!((peak.window, peak.value), (1, 9));
        assert_eq!((trough.window, trough.value), (2, 1));
        assert!(peak_trough(&[]).is_none());
    }

    #[test]
    fn zscores_are_zero_mean_and_flat_safe() {
        let z = zscores(&[1, 2, 3]);
        assert!(z.iter().sum::<f64>().abs() < 1e-12);
        assert!(z[2] > 0.0 && z[0] < 0.0);
        assert_eq!(zscores(&[5, 5, 5]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn anomalies_rank_by_magnitude_then_window() {
        let top = top_anomalies(&[0, 0, 100, 0, -100, 0], 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].window, 2, "positive spike first (same |z|)");
        assert_eq!(top[1].window, 4);
        assert!(top[0].z > 0.0 && top[1].z < 0.0);
    }
}
