//! Fig 3: workload characteristics.
//!
//! (a) request distribution by object size, split into all /
//! infrastructure-only / peer-assisted; (b) content popularity
//! (rank-frequency); (c) bytes served per hour, GMT vs local time.

use crate::stats::Cdf;
use netsession_logs::TraceDataset;
use std::collections::HashMap;

/// Fig 3a: the three request-size CDFs (x in GB).
pub struct SizeCdfs {
    /// Every request.
    pub all: Cdf,
    /// Requests for objects without peer assist.
    pub infra_only: Cdf,
    /// Requests for p2p-enabled objects.
    pub peer_assisted: Cdf,
}

/// Build Fig 3a from the download records.
pub fn fig3a(ds: &TraceDataset) -> SizeCdfs {
    let gb = |b: u64| b as f64 / 1e9;
    let all = Cdf::from_values(ds.downloads.iter().map(|d| gb(d.size.bytes())).collect());
    let infra_only = Cdf::from_values(
        ds.downloads
            .iter()
            .filter(|d| !d.p2p_enabled)
            .map(|d| gb(d.size.bytes()))
            .collect(),
    );
    let peer_assisted = Cdf::from_values(
        ds.downloads
            .iter()
            .filter(|d| d.p2p_enabled)
            .map(|d| gb(d.size.bytes()))
            .collect(),
    );
    SizeCdfs {
        all,
        infra_only,
        peer_assisted,
    }
}

/// Fig 3b: downloads per object, sorted descending (rank 1 first).
pub fn fig3b(ds: &TraceDataset) -> Vec<u64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for d in &ds.downloads {
        *counts.entry(d.object.0).or_insert(0) += 1;
    }
    let mut v: Vec<u64> = counts.into_values().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

/// Estimate a power-law exponent from a rank-frequency list by regressing
/// log(count) on log(rank) over the upper ranks.
pub fn powerlaw_exponent(ranked: &[u64]) -> f64 {
    let n = ranked.len().clamp(2, 1000);
    let points: Vec<(f64, f64)> = ranked[..n]
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, c)| (((i + 1) as f64).ln(), (*c as f64).ln()))
        .collect();
    let m = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = m * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (m * sxy - sx * sy) / denom
}

/// Fig 3c: terabytes served per hour over the trace, indexed by hour since
/// trace start, in GMT and shifted into each requester's local time.
/// `tz_of_country` maps the gazetteer country index to a GMT offset.
pub fn fig3c(
    ds: &TraceDataset,
    hours: usize,
    tz_of_country: impl Fn(u16) -> i32,
) -> (Vec<f64>, Vec<f64>) {
    let mut gmt = vec![0.0; hours];
    let mut local = vec![0.0; hours];
    for d in &ds.downloads {
        let bytes_tb = d.total_bytes().bytes() as f64 / 1e12;
        let h = d.ended.hour_index() as usize;
        if h < hours {
            gmt[h] += bytes_tb;
        }
        let tz = tz_of_country(d.country);
        let lh = d.ended.as_micros() as i64 / 3_600_000_000 + tz as i64;
        if lh >= 0 && (lh as usize) < hours {
            local[lh as usize] += bytes_tb;
        }
    }
    (gmt, local)
}

/// The Fig 3a claim check: fraction of peer-assisted requests for objects
/// larger than 500 MB (the paper reports 82 %).
pub fn p2p_large_request_fraction(ds: &TraceDataset) -> f64 {
    let p2p: Vec<&netsession_logs::records::DownloadRecord> =
        ds.downloads.iter().filter(|d| d.p2p_enabled).collect();
    if p2p.is_empty() {
        return 0.0;
    }
    p2p.iter()
        .filter(|d| d.size.bytes() > 500 * 1024 * 1024)
        .count() as f64
        / p2p.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
    use netsession_core::time::{SimDuration, SimTime};
    use netsession_core::units::ByteCount;
    use netsession_logs::records::{DownloadOutcome, DownloadRecord};

    fn dl(object: u64, p2p: bool, size: u64, ended_hour: u64, country: u16) -> DownloadRecord {
        DownloadRecord {
            guid: Guid(1),
            object: ObjectId(object),
            cp: CpCode(1),
            size: ByteCount(size),
            p2p_enabled: p2p,
            started: SimTime(0),
            ended: SimTime::ZERO + SimDuration::from_hours(ended_hour),
            bytes_infra: ByteCount(size),
            bytes_peers: ByteCount(0),
            outcome: DownloadOutcome::Completed,
            initial_peers: 0,
            asn: AsNumber(1),
            country,
            region: 0,
        }
    }

    #[test]
    fn fig3a_splits_classes() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, true, 2_000_000_000, 0, 0));
        ds.downloads.push(dl(2, false, 5_000_000, 0, 0));
        let cdfs = fig3a(&ds);
        assert_eq!(cdfs.all.len(), 2);
        assert_eq!(cdfs.infra_only.len(), 1);
        assert_eq!(cdfs.peer_assisted.len(), 1);
        assert!(cdfs.peer_assisted.median() > cdfs.infra_only.median());
    }

    #[test]
    fn fig3b_is_descending() {
        let mut ds = TraceDataset::default();
        for _ in 0..5 {
            ds.downloads.push(dl(1, false, 10, 0, 0));
        }
        ds.downloads.push(dl(2, false, 10, 0, 0));
        let ranked = fig3b(&ds);
        assert_eq!(ranked, vec![5, 1]);
    }

    #[test]
    fn powerlaw_exponent_recovers_slope() {
        // counts ~ rank^-1 exactly.
        let ranked: Vec<u64> = (1..=200u64).map(|r| (10_000 / r).max(1)).collect();
        let alpha = powerlaw_exponent(&ranked);
        assert!((alpha + 1.0).abs() < 0.1, "alpha {alpha}");
    }

    #[test]
    fn fig3c_buckets_by_hour_and_timezone() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, false, 1_000_000_000_000, 5, 7));
        let (gmt, local) = fig3c(&ds, 24, |c| if c == 7 { 3 } else { 0 });
        assert!((gmt[5] - 1.0).abs() < 1e-9);
        assert!((local[8] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_request_fraction() {
        let mut ds = TraceDataset::default();
        ds.downloads.push(dl(1, true, 600 * 1024 * 1024, 0, 0));
        ds.downloads.push(dl(2, true, 10, 0, 0));
        ds.downloads.push(dl(3, false, 10, 0, 0));
        assert!((p2p_large_request_fraction(&ds) - 0.5).abs() < 1e-9);
    }
}
