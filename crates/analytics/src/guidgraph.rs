//! Fig 12: secondary-GUID chain graphs.
//!
//! "We then collected and analyzed the secondary GUIDs…, grouped them by
//! primary GUID, and constructed graphs in which vertices represent
//! secondary GUIDs and edges connect GUIDs that follow each other in a
//! login entry… 99.4 % of the graphs were linear chains…. But the
//! remaining 0.6 % were trees. \[Most common:\] one long branch with a
//! single, one-vertex short branch (46.2 %), two long branches (6.2 %),
//! and several short or medium branches (23.5 %)."

use netsession_core::id::SecondaryGuid;
use netsession_logs::TraceDataset;
use std::collections::{HashMap, HashSet};

/// Fig 12 pattern classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChainPattern {
    /// A pure linear chain — a normal installation.
    Linear,
    /// One long branch plus a single one-vertex short branch — the failed
    /// software update signature.
    LongPlusStub,
    /// Two long branches — a restored backup.
    TwoLongBranches,
    /// Several short/medium branches — re-imaging or master-image cloning.
    SeveralBranches,
    /// Anything stranger.
    Irregular,
}

/// One reconstructed graph.
#[derive(Clone, Debug)]
pub struct ChainGraph {
    /// Vertices (secondary GUIDs).
    pub vertices: usize,
    /// Child adjacency: parent → children.
    children: HashMap<SecondaryGuid, Vec<SecondaryGuid>>,
    roots: Vec<SecondaryGuid>,
}

impl ChainGraph {
    /// Build a graph from the login reports of one primary GUID. Each
    /// report lists the last secondary GUIDs *newest first*, so report
    /// element `i+1` is the parent of element `i`.
    pub fn from_reports(reports: &[Vec<SecondaryGuid>]) -> ChainGraph {
        let mut children: HashMap<SecondaryGuid, Vec<SecondaryGuid>> = HashMap::new();
        let mut all: HashSet<SecondaryGuid> = HashSet::new();
        let mut has_parent: HashSet<SecondaryGuid> = HashSet::new();
        for rep in reports {
            for w in rep.windows(2) {
                let (child, parent) = (w[0], w[1]);
                all.insert(child);
                all.insert(parent);
                has_parent.insert(child);
                let c = children.entry(parent).or_default();
                if !c.contains(&child) {
                    c.push(child);
                }
            }
            if rep.len() == 1 {
                all.insert(rep[0]);
            }
        }
        let roots = all
            .iter()
            .filter(|v| !has_parent.contains(v))
            .copied()
            .collect();
        ChainGraph {
            vertices: all.len(),
            children,
            roots,
        }
    }

    /// Branch points: vertices with more than one child.
    pub fn branch_points(&self) -> Vec<(SecondaryGuid, usize)> {
        self.children
            .iter()
            .filter(|(_, c)| c.len() > 1)
            .map(|(v, c)| (*v, c.len()))
            .collect()
    }

    /// Length of the chain hanging off `v` (number of vertices reachable
    /// going down, following the longest path).
    fn depth(&self, v: SecondaryGuid) -> usize {
        let mut best = 1;
        if let Some(children) = self.children.get(&v) {
            for c in children {
                best = best.max(1 + self.depth(*c));
            }
        }
        best
    }

    /// Classify the graph into a Fig 12 pattern.
    pub fn classify(&self) -> ChainPattern {
        let branch_points = self.branch_points();
        if branch_points.is_empty() && self.roots.len() <= 1 {
            return ChainPattern::Linear;
        }
        if self.roots.len() > 1 {
            return ChainPattern::Irregular;
        }
        if branch_points.len() == 1 {
            let (v, degree) = branch_points[0];
            let mut depths: Vec<usize> = self.children[&v].iter().map(|c| self.depth(*c)).collect();
            depths.sort_unstable();
            if degree == 2 {
                let (short, long) = (depths[0], depths[1]);
                if short == 1 && long >= 2 {
                    return ChainPattern::LongPlusStub;
                }
                if short >= 2 {
                    return ChainPattern::TwoLongBranches;
                }
                // Two one-vertex branches: a tiny multi-branch graph.
                return ChainPattern::SeveralBranches;
            }
            // One branch point with ≥3 branches.
            return ChainPattern::SeveralBranches;
        }
        // Multiple branch points: several branches if they are all short,
        // irregular otherwise.
        let all_short = branch_points.iter().all(|(v, _)| {
            self.children[v]
                .iter()
                .map(|c| self.depth(*c))
                .filter(|d| *d >= 2)
                .count()
                <= 1
        });
        if all_short && branch_points.len() <= 4 {
            ChainPattern::SeveralBranches
        } else {
            ChainPattern::Irregular
        }
    }
}

/// Fig 12 census: pattern → count over all GUIDs with ≥3 vertices (as the
/// paper restricts to "connected graphs with at least three vertices").
pub fn fig12(ds: &TraceDataset) -> HashMap<ChainPattern, u64> {
    let mut per_guid: HashMap<u128, Vec<(u64, Vec<SecondaryGuid>)>> = HashMap::new();
    for l in &ds.logins {
        if l.secondary_guids.is_empty() {
            continue;
        }
        per_guid
            .entry(l.guid.0)
            .or_default()
            .push((l.at.as_micros(), l.secondary_guids.clone()));
    }
    let mut census: HashMap<ChainPattern, u64> = HashMap::new();
    for (_, mut reports) in per_guid {
        reports.sort_by_key(|(t, _)| *t);
        let reports: Vec<Vec<SecondaryGuid>> = reports.into_iter().map(|(_, r)| r).collect();
        let graph = ChainGraph::from_reports(&reports);
        if graph.vertices < 3 {
            continue;
        }
        *census.entry(graph.classify()).or_insert(0) += 1;
    }
    census
}

/// Fraction of graphs that are nonlinear (the paper's 0.6 %).
pub fn nonlinear_fraction(census: &HashMap<ChainPattern, u64>) -> f64 {
    let total: u64 = census.values().sum();
    if total == 0 {
        return 0.0;
    }
    let linear = census.get(&ChainPattern::Linear).copied().unwrap_or(0);
    (total - linear) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(n: u32) -> SecondaryGuid {
        SecondaryGuid([n, 0, 0, 0, 0])
    }

    /// Build reports simulating a normal run: 1, then 2 1, then 3 2 1, …
    fn linear_reports(n: u32) -> Vec<Vec<SecondaryGuid>> {
        (1..=n)
            .map(|i| (1..=i).rev().take(5).map(sg).collect())
            .collect()
    }

    #[test]
    fn linear_chains_classify_linear() {
        let g = ChainGraph::from_reports(&linear_reports(6));
        assert_eq!(g.vertices, 6);
        assert_eq!(g.classify(), ChainPattern::Linear);
    }

    #[test]
    fn rollback_classifies_long_plus_stub() {
        // 1→2→3, then rollback to 2, then 2→4→5: vertex 2 has children
        // {3, 4}; 3 is a stub.
        let reports = vec![
            vec![sg(1)],
            vec![sg(2), sg(1)],
            vec![sg(3), sg(2), sg(1)],
            vec![sg(4), sg(2), sg(1)],
            vec![sg(5), sg(4), sg(2), sg(1)],
        ];
        let g = ChainGraph::from_reports(&reports);
        assert_eq!(g.classify(), ChainPattern::LongPlusStub);
    }

    #[test]
    fn backup_restore_classifies_two_long() {
        // 1→2→3→4 and 2→5→6.
        let reports = vec![
            vec![sg(1)],
            vec![sg(2), sg(1)],
            vec![sg(3), sg(2), sg(1)],
            vec![sg(4), sg(3), sg(2), sg(1)],
            vec![sg(5), sg(2), sg(1)],
            vec![sg(6), sg(5), sg(2), sg(1)],
        ];
        let g = ChainGraph::from_reports(&reports);
        assert_eq!(g.classify(), ChainPattern::TwoLongBranches);
    }

    #[test]
    fn reimage_classifies_several_branches() {
        // 1→2 with branches 3, 4, 5 off vertex 2.
        let reports = vec![
            vec![sg(1)],
            vec![sg(2), sg(1)],
            vec![sg(3), sg(2), sg(1)],
            vec![sg(4), sg(2), sg(1)],
            vec![sg(5), sg(2), sg(1)],
        ];
        let g = ChainGraph::from_reports(&reports);
        assert_eq!(g.classify(), ChainPattern::SeveralBranches);
    }

    #[test]
    fn fig12_census_counts_patterns() {
        use netsession_core::id::{AsNumber, Guid};
        use netsession_core::time::SimTime;
        use netsession_logs::records::LoginRecord;
        let mut ds = TraceDataset::default();
        let mut push = |guid: u128, at: u64, sguids: Vec<SecondaryGuid>| {
            ds.logins.push(LoginRecord {
                at: SimTime(at),
                guid: Guid(guid),
                ip: 1,
                asn: AsNumber(1),
                country: 0,
                lat: 0.0,
                lon: 0.0,
                uploads_enabled: true,
                software_version: 1,
                secondary_guids: sguids,
            });
        };
        // GUID 1: linear with 4 reports.
        for (i, rep) in linear_reports(4).into_iter().enumerate() {
            push(1, i as u64, rep);
        }
        // GUID 2: too small (2 vertices) — excluded.
        push(2, 0, vec![sg(100)]);
        push(2, 1, vec![sg(101), sg(100)]);
        let census = fig12(&ds);
        assert_eq!(census.get(&ChainPattern::Linear), Some(&1));
        assert_eq!(census.values().sum::<u64>(), 1);
        assert_eq!(nonlinear_fraction(&census), 0.0);
    }
}
