//! Property-based tests for the analytics toolbox.

use netsession_analytics::guidgraph::{ChainGraph, ChainPattern};
use netsession_analytics::stats::Cdf;
use netsession_core::id::SecondaryGuid;
use proptest::prelude::*;

proptest! {
    /// CDF axioms: fraction_at is monotone, 0 below the min, 1 at the max;
    /// percentiles are actual samples and ordered.
    #[test]
    fn cdf_axioms(values in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let cdf = Cdf::from_values(values.clone());
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(cdf.fraction_at(min - 1.0), 0.0);
        prop_assert!((cdf.fraction_at(max) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = min + (max - min) * i as f64 / 20.0;
            let f = cdf.fraction_at(x);
            prop_assert!(f >= prev - 1e-12, "monotone");
            prev = f;
        }
        let p20 = cdf.percentile(20.0);
        let p80 = cdf.percentile(80.0);
        prop_assert!(p20 <= p80);
        prop_assert!(values.contains(&p20) && values.contains(&p80));
    }

    /// A chain built from overlapping last-5 reports of a single linear
    /// history is always classified Linear, for any history length.
    #[test]
    fn linear_histories_classify_linear(len in 3u32..40) {
        let reports: Vec<Vec<SecondaryGuid>> = (1..=len)
            .map(|i| {
                let lo = i.saturating_sub(4).max(1);
                (lo..=i).rev().map(|k| SecondaryGuid([k, 0, 0, 0, 0])).collect()
            })
            .collect();
        let g = ChainGraph::from_reports(&reports);
        prop_assert_eq!(g.vertices as u32, len);
        prop_assert_eq!(g.classify(), ChainPattern::Linear);
    }

    /// A history with exactly one single-start rollback is always
    /// LongPlusStub (when long enough), never Linear.
    #[test]
    fn rollback_histories_classify_stub(len in 6u32..30, fail_at in 2u32..5) {
        // Build: 1..fail_at, then stub fail_at+1, then resume from fail_at
        // with fresh ids.
        let mut history: Vec<Vec<u32>> = Vec::new(); // chains, oldest→newest
        let mut chain: Vec<u32> = (1..=fail_at).collect();
        for c in 1..=fail_at {
            history.push((1..=c).collect());
        }
        // The failed start.
        let stub = 1000;
        let mut with_stub = chain.clone();
        with_stub.push(stub);
        history.push(with_stub);
        // Rolled back; continue on fresh ids.
        for k in 0..(len - fail_at) {
            chain.push(2000 + k);
            history.push(chain.clone());
        }
        let reports: Vec<Vec<SecondaryGuid>> = history
            .iter()
            .map(|c| c.iter().rev().take(5).map(|k| SecondaryGuid([*k, 0, 0, 0, 0])).collect())
            .collect();
        let g = ChainGraph::from_reports(&reports);
        prop_assert_eq!(g.classify(), ChainPattern::LongPlusStub);
    }
}
