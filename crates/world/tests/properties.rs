//! Property-based tests for the world generator.

use netsession_core::rng::DetRng;
use netsession_core::time::TRACE_MONTH;
use netsession_world::catalog::Catalog;
use netsession_world::geo::WORLD_COUNTRIES;
use netsession_world::population::{Population, PopulationConfig};
use netsession_world::workload::{Workload, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Population generation never panics and produces structurally valid
    /// peers at any size/seed.
    #[test]
    fn population_is_structurally_valid(
        peers in 50usize..2000,
        ases in 50usize..300,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::seeded(seed);
        let pop = Population::generate(
            &PopulationConfig { peers, ases, ..PopulationConfig::default() },
            &mut rng,
        );
        prop_assert_eq!(pop.len(), peers);
        for p in &pop.peers {
            prop_assert!(p.country < WORLD_COUNTRIES.len());
            prop_assert!(p.city < WORLD_COUNTRIES[p.country].cities.len());
            prop_assert!(p.as_index < pop.as_model.len());
            prop_assert!(p.up.bytes_per_sec() > 0.0);
            prop_assert!(p.down.bytes_per_sec() > 0.0);
            prop_assert!((0.0..24.0).contains(&p.online_start_hour));
        }
        // Regional index lists partition the population.
        let total: usize = pop.by_region.iter().map(|v| v.len()).sum();
        prop_assert_eq!(total, peers);
    }

    /// Catalog invariants at any scale: dense ids, positive sizes,
    /// p2p-enabled files rare.
    #[test]
    fn catalog_is_structurally_valid(objects in 100usize..3000, seed in any::<u64>()) {
        let mut rng = DetRng::seeded(seed);
        let cat = Catalog::generate(objects, &mut rng);
        for (i, o) in cat.objects().iter().enumerate() {
            prop_assert_eq!(o.id.0 as usize, i);
            prop_assert!(o.size.bytes() > 0);
            prop_assert!(o.popularity > 0.0);
            if o.policy.p2p_enabled {
                prop_assert!(o.policy.upload_allowed);
            }
        }
        prop_assert!(cat.p2p_file_fraction() < 0.10);
    }

    /// Workload requests always land inside the trace month, sorted, with
    /// valid peer/object references.
    #[test]
    fn workload_requests_are_valid(downloads in 100usize..2000, seed in any::<u64>()) {
        let mut rng = DetRng::seeded(seed);
        let pop = Population::generate(
            &PopulationConfig { peers: 500, ases: 60, ..PopulationConfig::default() },
            &mut rng,
        );
        let cat = Catalog::generate(300, &mut rng);
        let wl = Workload::generate(
            &WorkloadConfig { downloads, ..WorkloadConfig::default() },
            &pop,
            &cat,
            &mut rng,
        );
        prop_assert_eq!(wl.len(), downloads);
        let mut prev = netsession_core::time::SimTime::ZERO;
        for r in &wl.requests {
            prop_assert!(r.at >= prev);
            prop_assert!(r.at.as_micros() < TRACE_MONTH.as_micros());
            prop_assert!((r.peer.0 as usize) < pop.len());
            prop_assert!((r.object.0 as usize) < cat.len());
            prev = r.at;
        }
    }
}
