//! Content catalog.
//!
//! Calibrated to §4.4 and §5.1:
//!
//! * object sizes form a mixture from a few MB to multiple GB, and
//!   peer-assist is enabled predominantly on large objects ("82 % of
//!   peer-assisted requests are for objects larger than 500 MB", Fig 3a);
//! * p2p delivery is enabled on only ~1.7 % of distinct files, yet those
//!   files account for the majority (57.4 %) of downloaded bytes, because
//!   providers enable it on their large flagship objects;
//! * popularity is heavy-tailed ("the nearly ubiquitous power law",
//!   Fig 3b).

use crate::customers::{ContentProfile, CUSTOMERS};
use netsession_core::id::{CpCode, ObjectId, VersionId};
use netsession_core::policy::DownloadPolicy;
use netsession_core::rng::DetRng;
use netsession_core::units::ByteCount;

/// One distributable object.
#[derive(Clone, Debug)]
pub struct ObjectSpec {
    /// Object ID (dense, index == id).
    pub id: ObjectId,
    /// Owning provider's CP code.
    pub cp: CpCode,
    /// Index into [`CUSTOMERS`].
    pub customer: usize,
    /// Object size.
    pub size: ByteCount,
    /// Provider policy (p2p enablement, upload caps).
    pub policy: DownloadPolicy,
    /// Relative request rate (heavy-tailed).
    pub popularity: f64,
}

impl ObjectSpec {
    /// The current (only) version of this object.
    pub fn version(&self) -> VersionId {
        VersionId {
            object: self.id,
            version: 1,
        }
    }
}

/// The generated catalog.
pub struct Catalog {
    objects: Vec<ObjectSpec>,
    /// Object indices per customer.
    per_customer: Vec<Vec<usize>>,
    /// Cumulative popularity per customer, for sampling.
    cum_pop: Vec<Vec<f64>>,
}

/// Draw an object size for a content profile. The mixtures put the bulk of
/// *files* below 100 MB while games ship multi-GB flagships.
fn draw_size(profile: ContentProfile, flagship: bool, rng: &mut DetRng) -> ByteCount {
    let mib = match (profile, flagship) {
        (ContentProfile::Games, true) => rng.lognormal((2048.0f64).ln(), 0.7).clamp(600.0, 16384.0),
        (ContentProfile::Games, false) => {
            if rng.chance(0.35) {
                rng.lognormal((300.0f64).ln(), 0.9).clamp(5.0, 2000.0)
            } else {
                rng.lognormal((12.0f64).ln(), 1.2).clamp(0.2, 300.0)
            }
        }
        (ContentProfile::Software, true) => {
            rng.lognormal((900.0f64).ln(), 0.6).clamp(450.0, 6000.0)
        }
        (ContentProfile::Software, false) => {
            if rng.chance(0.25) {
                rng.lognormal((120.0f64).ln(), 0.9).clamp(5.0, 800.0)
            } else {
                rng.lognormal((8.0f64).ln(), 1.3).clamp(0.1, 200.0)
            }
        }
        (ContentProfile::Media, true) => rng.lognormal((700.0f64).ln(), 0.5).clamp(400.0, 4000.0),
        (ContentProfile::Media, false) => rng.lognormal((6.0f64).ln(), 1.5).clamp(0.05, 400.0),
    };
    ByteCount::from_bytes((mib * 1024.0 * 1024.0) as u64)
}

impl Catalog {
    /// Generate a catalog with roughly `target_objects` objects, split over
    /// the customers by download share.
    pub fn generate(target_objects: usize, rng: &mut DetRng) -> Catalog {
        let mut objects = Vec::with_capacity(target_objects);
        let mut per_customer = Vec::with_capacity(CUSTOMERS.len());

        for (ci, customer) in CUSTOMERS.iter().enumerate() {
            let n = ((target_objects as f64 * customer.download_share).round() as usize).max(20);
            // Flagship count: enough that p2p-enabled *files* stay rare
            // (~1.7% globally) while carrying most of the bytes.
            let flagships = match customer.profile {
                ContentProfile::Games => (n / 30).clamp(2, 60),
                ContentProfile::Software => (n / 60).clamp(1, 25),
                ContentProfile::Media => (n / 200).max(1),
            };
            let mut idxs = Vec::with_capacity(n);
            for k in 0..n {
                let flagship = k < flagships;
                let size = draw_size(customer.profile, flagship, rng);
                // Peer-assist policy: providers enable it on their large
                // flagship objects (and occasionally on other big files).
                let p2p = if flagship {
                    rng.chance(0.80)
                } else {
                    size.bytes() > ByteCount::from_mib(500).bytes() && rng.chance(0.12)
                };
                let policy = if p2p {
                    DownloadPolicy::peer_assisted()
                } else {
                    DownloadPolicy::infrastructure_only()
                };
                // Heavy-tailed popularity (capped so no single long-tail
                // object swamps a provider); flagships are the
                // blockbusters.
                let mut pop = rng.pareto(1.0, 0.8).min(60.0);
                if flagship {
                    pop *= 12.0 * rng.range_f64(0.8, 1.2);
                }
                let id = ObjectId(objects.len() as u64);
                idxs.push(objects.len());
                objects.push(ObjectSpec {
                    id,
                    cp: customer.cp,
                    customer: ci,
                    size,
                    policy,
                    popularity: pop,
                });
            }
            per_customer.push(idxs);
        }

        let cum_pop = per_customer
            .iter()
            .map(|idxs| {
                let mut acc = 0.0;
                idxs.iter()
                    .map(|i| {
                        acc += objects[*i].popularity;
                        acc
                    })
                    .collect()
            })
            .collect();

        Catalog {
            objects,
            per_customer,
            cum_pop,
        }
    }

    /// All objects.
    pub fn objects(&self) -> &[ObjectSpec] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Object by ID.
    pub fn get(&self, id: ObjectId) -> &ObjectSpec {
        &self.objects[id.0 as usize]
    }

    /// Sample an object of `customer` (index) by popularity.
    pub fn sample_object(&self, customer: usize, rng: &mut DetRng) -> &ObjectSpec {
        let cum = &self.cum_pop[customer];
        let total = *cum.last().expect("customer has objects");
        let target = rng.f64() * total;
        let pos = cum.partition_point(|c| *c <= target);
        &self.objects[self.per_customer[customer][pos.min(cum.len() - 1)]]
    }

    /// Fraction of distinct files with p2p enabled (§5.1: 1.7 % in the
    /// trace).
    pub fn p2p_file_fraction(&self) -> f64 {
        self.objects.iter().filter(|o| o.policy.p2p_enabled).count() as f64
            / self.objects.len() as f64
    }

    /// Expected fraction of downloaded *bytes* on p2p-enabled files
    /// (popularity-weighted; §5.1: 57.4 % in the trace).
    pub fn expected_p2p_byte_share(&self) -> f64 {
        let mut p2p = 0.0;
        let mut total = 0.0;
        for o in &self.objects {
            let bytes = o.popularity * o.size.bytes() as f64;
            total += bytes;
            if o.policy.p2p_enabled {
                p2p += bytes;
            }
        }
        p2p / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut rng = DetRng::seeded(11);
        Catalog::generate(4000, &mut rng)
    }

    #[test]
    fn catalog_size_near_target() {
        let c = catalog();
        assert!((3500..4800).contains(&c.len()), "{}", c.len());
        assert!(!c.is_empty());
    }

    /// §5.1: "peer-to-peer downloads were enabled for only 1.7 % of the
    /// files, but these downloads accounted for 57.4 % of the downloaded
    /// bytes overall."
    #[test]
    fn p2p_files_rare_but_byte_dominant() {
        let c = catalog();
        let file_frac = c.p2p_file_fraction();
        assert!(
            (0.005..0.06).contains(&file_frac),
            "p2p file fraction {file_frac}"
        );
        let byte_share = c.expected_p2p_byte_share();
        assert!(
            (0.40..0.88).contains(&byte_share),
            "p2p byte share {byte_share}"
        );
    }

    /// Fig 3a: peer-assisted requests are strongly biased toward large
    /// objects.
    #[test]
    fn p2p_objects_are_large() {
        let c = catalog();
        let p2p_sizes: Vec<u64> = c
            .objects()
            .iter()
            .filter(|o| o.policy.p2p_enabled)
            .map(|o| o.size.bytes())
            .collect();
        assert!(!p2p_sizes.is_empty());
        let over_500mb = p2p_sizes
            .iter()
            .filter(|s| **s > ByteCount::from_mib(500).bytes())
            .count() as f64
            / p2p_sizes.len() as f64;
        assert!(over_500mb > 0.7, "only {over_500mb:.2} of p2p files >500MB");
    }

    /// Fig 3b: popularity follows a power law — the top 1 % of objects get
    /// a grossly disproportionate share of requests.
    #[test]
    fn popularity_is_heavy_tailed() {
        let c = catalog();
        let mut pops: Vec<f64> = c.objects().iter().map(|o| o.popularity).collect();
        pops.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = pops.iter().sum();
        let top1: f64 = pops[..c.len() / 100].iter().sum();
        // The tail is capped (see `generate`) to keep experiments stable,
        // so the concentration is milder than a raw Pareto — but still an
        // order of magnitude above uniform (which would give 1%).
        assert!(top1 / total > 0.12, "top 1% share {:.3}", top1 / total);
    }

    #[test]
    fn sampling_respects_customer_and_popularity() {
        let c = catalog();
        let mut rng = DetRng::seeded(12);
        for (customer, spec) in CUSTOMERS.iter().enumerate() {
            let mut mass_of_p2p = 0.0;
            let draws = 2000;
            for _ in 0..draws {
                let o = c.sample_object(customer, &mut rng);
                assert_eq!(o.customer, customer);
                if o.policy.p2p_enabled {
                    mass_of_p2p += 1.0;
                }
            }
            // Flagships are few but popular: p2p-enabled requests should be
            // far above the p2p *file* fraction for game-heavy customers.
            if spec.profile == ContentProfile::Games {
                assert!(
                    mass_of_p2p / draws as f64 > 0.035,
                    "customer {} p2p request share {:.3}",
                    spec.name,
                    mass_of_p2p / draws as f64
                );
            }
        }
    }

    #[test]
    fn object_ids_are_dense() {
        let c = catalog();
        for (i, o) in c.objects().iter().enumerate() {
            assert_eq!(o.id.0 as usize, i);
            assert_eq!(c.get(o.id).id, o.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = DetRng::seeded(77);
        let mut r2 = DetRng::seeded(77);
        let a = Catalog::generate(1000, &mut r1);
        let b = Catalog::generate(1000, &mut r2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.objects().iter().zip(b.objects()) {
            assert_eq!(x.size, y.size);
            assert_eq!(x.popularity, y.popularity);
            assert_eq!(x.policy, y.policy);
        }
    }
}
