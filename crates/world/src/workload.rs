//! Request workload generation.
//!
//! Produces the month of download requests the simulation replays:
//! customers chosen by download share, objects by Zipf popularity (Fig 3b),
//! requesting peers by the customer's Table-2 regional mix, and request
//! times following the "usual diurnal patterns" of Fig 3c — pronounced in
//! local time, blurred in GMT because the population spans every timezone.

use crate::catalog::Catalog;
use crate::customers::CUSTOMERS;
use crate::population::Population;
use netsession_core::id::{ObjectId, PeerIndex};
use netsession_core::rng::DetRng;
use netsession_core::time::{SimDuration, SimTime, TRACE_MONTH};

/// Relative request intensity per *local* hour of day: evening peak,
/// night trough.
pub const DIURNAL_WEIGHTS: [f64; 24] = [
    0.45, 0.32, 0.24, 0.20, 0.20, 0.26, 0.38, 0.55, 0.72, 0.85, 0.95, 1.00, 1.02, 1.00, 0.98, 1.00,
    1.08, 1.22, 1.42, 1.60, 1.68, 1.55, 1.18, 0.72,
];

/// One download request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// When the download is initiated (GMT).
    pub at: SimTime,
    /// The requesting peer.
    pub peer: PeerIndex,
    /// The requested object.
    pub object: ObjectId,
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Total downloads to generate over the trace month.
    pub downloads: usize,
    /// Mild weekend boost (1.0 = none).
    pub weekend_factor: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            downloads: 60_000,
            weekend_factor: 1.15,
        }
    }
}

/// The generated request trace, sorted by time.
pub struct Workload {
    /// Time-ordered requests.
    pub requests: Vec<Request>,
}

impl Workload {
    /// Generate the month's requests.
    pub fn generate(
        cfg: &WorkloadConfig,
        population: &Population,
        catalog: &Catalog,
        rng: &mut DetRng,
    ) -> Workload {
        let customer_weights: Vec<f64> = CUSTOMERS.iter().map(|c| c.download_share).collect();
        let days = TRACE_MONTH.as_micros() / 86_400_000_000;
        let day_weights: Vec<f64> = (0..days)
            .map(|d| {
                // Our synthetic month starts on a Monday; days 5,6 of each
                // week are the weekend.
                if d % 7 >= 5 {
                    cfg.weekend_factor
                } else {
                    1.0
                }
            })
            .collect();

        let mut requests = Vec::with_capacity(cfg.downloads);
        for _ in 0..cfg.downloads {
            let customer = rng.weighted_index(&customer_weights);
            let object = catalog.sample_object(customer, rng);
            let region_idx = rng.weighted_index(&CUSTOMERS[customer].region_mix);
            let region = crate::geo::Region::ALL[region_idx];
            let peer_idx = population.sample_in_region(region, rng);
            let peer = population.peer(peer_idx);

            // Time: weekday by weight, then a local hour drawn from the
            // diurnal curve restricted to the user's online window.
            let day = rng.weighted_index(&day_weights) as u64;
            let local_hour = sample_local_hour(peer.online_start_hour, peer.online_hours, rng);
            // Convert local to GMT.
            let gmt_hour = local_hour - peer.tz_offset as f64;
            let micros_in_day = (gmt_hour.rem_euclid(24.0) * 3.6e9) as u64;
            let at = SimTime::ZERO + SimDuration::from_days(day) + SimDuration(micros_in_day);

            requests.push(Request {
                at,
                peer: peer_idx,
                object: object.id,
            });
        }
        requests.sort_by_key(|r| r.at);
        Workload { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Draw a local hour from the diurnal distribution restricted (softly) to
/// the user's online window: rejection-sample the curve, fall back to
/// uniform-in-window.
fn sample_local_hour(start: f64, len: f64, rng: &mut DetRng) -> f64 {
    let in_window = |h: f64| {
        let end = start + len;
        if end <= 24.0 {
            h >= start && h < end
        } else {
            h >= start || h < end - 24.0
        }
    };
    for _ in 0..12 {
        let h = rng.weighted_index(&DIURNAL_WEIGHTS) as f64 + rng.f64();
        if in_window(h) {
            return h;
        }
    }
    (start + rng.f64() * len).rem_euclid(24.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationConfig};

    fn fixture() -> (Population, Catalog, Workload) {
        let mut rng = DetRng::seeded(31);
        let pop = Population::generate(
            &PopulationConfig {
                peers: 8000,
                ases: 300,
                ..PopulationConfig::default()
            },
            &mut rng,
        );
        let catalog = Catalog::generate(2000, &mut rng);
        let wl = Workload::generate(
            &WorkloadConfig {
                downloads: 20_000,
                ..WorkloadConfig::default()
            },
            &pop,
            &catalog,
            &mut rng,
        );
        (pop, catalog, wl)
    }

    #[test]
    fn generates_sorted_requests_within_month() {
        let (_, _, wl) = fixture();
        assert_eq!(wl.len(), 20_000);
        let mut prev = SimTime::ZERO;
        for r in &wl.requests {
            assert!(r.at >= prev);
            assert!(r.at.as_micros() < TRACE_MONTH.as_micros());
            prev = r.at;
        }
    }

    /// Fig 3c: pronounced diurnal variation in local time.
    #[test]
    fn local_time_diurnal_peak_and_trough() {
        let (pop, _, wl) = fixture();
        let mut by_local_hour = [0usize; 24];
        for r in &wl.requests {
            let tz = pop.peer(r.peer).tz_offset;
            by_local_hour[r.at.hour_of_day_local(tz) as usize] += 1;
        }
        let evening: usize = (18..23).map(|h| by_local_hour[h]).sum();
        let night: usize = (1..6).map(|h| by_local_hour[h]).sum();
        assert!(
            evening > night * 3,
            "evening {evening} vs night {night}: no diurnal pattern"
        );
    }

    /// The GMT curve must be flatter than the local curve (tz spread).
    #[test]
    fn gmt_curve_is_flatter_than_local() {
        let (pop, _, wl) = fixture();
        let mut local = [0f64; 24];
        let mut gmt = [0f64; 24];
        for r in &wl.requests {
            let tz = pop.peer(r.peer).tz_offset;
            local[r.at.hour_of_day_local(tz) as usize] += 1.0;
            gmt[r.at.hour_of_day_gmt() as usize] += 1.0;
        }
        let spread = |v: &[f64; 24]| {
            let max = v.iter().cloned().fold(0.0, f64::max);
            let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
            max / min.max(1.0)
        };
        assert!(
            spread(&local) > spread(&gmt),
            "local spread {} should exceed gmt spread {}",
            spread(&local),
            spread(&gmt)
        );
    }

    /// Requests must respect the customers' regional mixes: customer F is
    /// Europe-only.
    #[test]
    fn regional_mix_respected_for_customer_f() {
        let (pop, catalog, wl) = fixture();
        let f_cp = crate::customers::customer_by_name("F").unwrap().cp;
        let mut total = 0;
        let mut in_europe = 0;
        for r in &wl.requests {
            if catalog.get(r.object).cp == f_cp {
                total += 1;
                if pop.peer(r.peer).region() == crate::geo::Region::Europe {
                    in_europe += 1;
                }
            }
        }
        assert!(total > 50, "customer F got only {total} requests");
        assert_eq!(in_europe, total, "customer F must be Europe-only");
    }

    /// Requesters should usually be online at request time (the workload
    /// samples inside the online window).
    #[test]
    fn requesters_are_online_at_request_time() {
        let (pop, _, wl) = fixture();
        let online = wl
            .requests
            .iter()
            .filter(|r| pop.peer(r.peer).online_at(r.at))
            .count();
        let frac = online as f64 / wl.len() as f64;
        assert!(frac > 0.85, "only {frac:.2} of requests in online windows");
    }

    #[test]
    fn determinism() {
        let mut r1 = DetRng::seeded(1);
        let mut r2 = DetRng::seeded(1);
        let cfg = PopulationConfig {
            peers: 1000,
            ases: 80,
            ..PopulationConfig::default()
        };
        let p1 = Population::generate(&cfg, &mut r1);
        let p2 = Population::generate(&cfg, &mut r2);
        let c1 = Catalog::generate(300, &mut r1);
        let c2 = Catalog::generate(300, &mut r2);
        let w = WorkloadConfig {
            downloads: 500,
            ..WorkloadConfig::default()
        };
        let w1 = Workload::generate(&w, &p1, &c1, &mut r1);
        let w2 = Workload::generate(&w, &p2, &c2, &mut r2);
        assert_eq!(w1.requests, w2.requests);
    }
}
