//! # netsession-world
//!
//! Synthetic world and workload generator — the substitute for the paper's
//! production trace (25.9 M GUIDs, October 2012; see DESIGN.md).
//!
//! Everything the measurement study depends on is generated here from a
//! single seed, with parameters calibrated to the aggregates the paper
//! publishes:
//!
//! * [`geo`] — continents, the nine Table-2 regions, ~50 countries with
//!   cities, timezones, and peer-population weights (27 % North America,
//!   35 % Europe, …, §4.2).
//! * [`asn`] — autonomous systems per country with heavy-tailed peer
//!   populations and per-AS access-link profiles (Fig 9c's "heavy uploaders
//!   simply contain a lot more peers").
//! * [`customers`] — content providers A–J with their regional download
//!   mixes (Table 2) and upload-default choices (Table 4).
//! * [`catalog`] — the object catalog: sizes (Fig 3a's mixture), Zipf
//!   popularity (Fig 3b), and per-object policies (p2p on 1.7 % of files,
//!   §5.1).
//! * [`population`] — the peer population: GUIDs, locations, ASes, NAT
//!   types, asymmetric link speeds, upload-enable settings, online
//!   schedules.
//! * [`workload`] — diurnally modulated request arrivals (Fig 3c).
//! * [`behaviour`] — the user model: pause/abort hazards that grow with
//!   download duration (Fig 7), rare setting changes (Table 3), disk-full
//!   failures (§5.2).
//! * [`mobility`] — login-location processes reproducing §6.2's mobility
//!   mix (80.6 % single-AS GUIDs, 77 % within 10 km).
//! * [`cloning`] — cloned and re-imaged installations that share a GUID and
//!   produce the §6.2 secondary-GUID branching patterns.

pub mod asn;
pub mod behaviour;
pub mod catalog;
pub mod cloning;
pub mod customers;
pub mod geo;
pub mod mobility;
pub mod population;
pub mod workload;

pub use catalog::{Catalog, ObjectSpec};
pub use customers::{Customer, CUSTOMERS};
pub use geo::{City, Country, Region, WORLD_COUNTRIES};
pub use population::{PeerSpec, Population, PopulationConfig};
pub use workload::{Request, Workload, WorkloadConfig};
