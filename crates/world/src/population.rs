//! Peer population generator.
//!
//! Generates the installed base: each peer has an installation GUID, a
//! geographic home, an AS with an asymmetric access link, a NAT
//! classification, the provider whose binary it installed (which sets the
//! upload default, Table 4), and a diurnal online schedule. A small
//! fraction of installations are clones or re-images sharing a GUID
//! (§6.2); the [`crate::cloning`] module elaborates their login behaviour.

use crate::asn::AsModel;
use crate::customers::CUSTOMERS;
use crate::geo::{region_of, Region, WORLD_COUNTRIES};
use netsession_core::id::{AsNumber, Guid, PeerIndex};
use netsession_core::msg::NatType;
use netsession_core::rng::DetRng;
use netsession_core::units::Bandwidth;

/// 2012-era consumer NAT mix: most peers behind some cone NAT, a
/// substantial symmetric share, and a few unfirewalled or fully blocked.
pub const NAT_DISTRIBUTION: [(NatType, f64); 6] = [
    (NatType::Open, 0.08),
    (NatType::FullCone, 0.12),
    (NatType::RestrictedCone, 0.22),
    (NatType::PortRestricted, 0.38),
    (NatType::Symmetric, 0.14),
    (NatType::Blocked, 0.06),
];

/// One installed NetSession Interface instance.
#[derive(Clone, Debug)]
pub struct PeerSpec {
    /// Dense simulation index.
    pub index: PeerIndex,
    /// Installation GUID. Cloned installations share one (§6.2).
    pub guid: Guid,
    /// Index into [`CUSTOMERS`]: whose binary this user installed.
    pub customer: usize,
    /// Index into [`WORLD_COUNTRIES`].
    pub country: usize,
    /// Index into the country's city list.
    pub city: usize,
    /// Index into the [`AsModel`].
    pub as_index: usize,
    /// The AS number (redundant with `as_index`; kept for log records).
    pub asn: AsNumber,
    /// Current public IPv4 address.
    pub ip: u32,
    /// NAT classification (as STUN would determine it).
    pub nat: NatType,
    /// Downstream access capacity.
    pub down: Bandwidth,
    /// Upstream access capacity.
    pub up: Bandwidth,
    /// Whether content uploads are enabled (Table 3/4).
    pub uploads_enabled: bool,
    /// Local timezone (GMT offset hours).
    pub tz_offset: i32,
    /// Local hour the user's machine typically comes online.
    pub online_start_hour: f64,
    /// Hours per day the machine stays online.
    pub online_hours: f64,
    /// Clone group, if this installation shares its GUID with others.
    pub clone_group: Option<u32>,
}

impl PeerSpec {
    /// Geographic coordinates of the peer's home city.
    pub fn latlon(&self) -> (f64, f64) {
        let c = &WORLD_COUNTRIES[self.country].cities[self.city];
        (c.lat, c.lon)
    }

    /// Table-2 region of the peer.
    pub fn region(&self) -> Region {
        let country = &WORLD_COUNTRIES[self.country];
        region_of(country, &country.cities[self.city])
    }

    /// Whether the machine is typically online at simulated time `t`
    /// (diurnal window in local time).
    pub fn online_at(&self, t: netsession_core::time::SimTime) -> bool {
        let local = t.hour_of_day_local(self.tz_offset) as f64
            + (t.as_micros() % 3_600_000_000) as f64 / 3.6e9;
        let start = self.online_start_hour;
        let end = start + self.online_hours;
        if end <= 24.0 {
            local >= start && local < end
        } else {
            local >= start || local < end - 24.0
        }
    }
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct PopulationConfig {
    /// Number of peers to generate.
    pub peers: usize,
    /// Target number of ASes in the universe.
    pub ases: usize,
    /// Fraction of installations that belong to a clone group.
    pub clone_fraction: f64,
    /// Mean size of a clone group (≥ 2).
    pub clone_group_mean: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            peers: 50_000,
            ases: 800,
            clone_fraction: 0.008,
            clone_group_mean: 3.0,
        }
    }
}

/// The generated population plus its AS universe.
pub struct Population {
    /// All peers, indexed by [`PeerIndex`].
    pub peers: Vec<PeerSpec>,
    /// The AS universe.
    pub as_model: AsModel,
    /// Peer indices per Table-2 region (aligned with [`Region::ALL`]).
    pub by_region: Vec<Vec<u32>>,
}

impl Population {
    /// Generate a population.
    pub fn generate(cfg: &PopulationConfig, rng: &mut DetRng) -> Population {
        let mut as_rng = rng.split(1);
        let as_model = AsModel::generate(cfg.ases, &mut as_rng);

        let country_weights: Vec<f64> = WORLD_COUNTRIES.iter().map(|c| c.peer_weight).collect();
        let customer_weights: Vec<f64> = CUSTOMERS.iter().map(|c| c.install_share).collect();
        let nat_weights: Vec<f64> = NAT_DISTRIBUTION.iter().map(|(_, w)| *w).collect();

        let mut peers = Vec::with_capacity(cfg.peers);
        let mut by_region: Vec<Vec<u32>> = vec![Vec::new(); Region::ALL.len()];
        let mut host_counter: Vec<u16> = vec![0; as_model.len()];

        // Clone groups: decide sizes up front, then deal memberships.
        let mut clone_slots: Vec<u32> = Vec::new();
        let clone_installs = (cfg.peers as f64 * cfg.clone_fraction) as usize;
        let mut group = 0u32;
        while clone_slots.len() < clone_installs {
            let size = 2 + rng.exp(cfg.clone_group_mean - 2.0).round() as usize;
            for _ in 0..size.min(clone_installs + 8 - clone_slots.len()) {
                clone_slots.push(group);
            }
            group += 1;
        }
        let mut clone_guids: Vec<Guid> = (0..group).map(|_| Guid::random(rng)).collect();
        rng.shuffle(&mut clone_guids);

        for i in 0..cfg.peers {
            let country = rng.weighted_index(&country_weights);
            let cities = WORLD_COUNTRIES[country].cities;
            let city_weights: Vec<f64> = cities.iter().map(|c| c.weight).collect();
            let city = rng.weighted_index(&city_weights);
            let customer = rng.weighted_index(&customer_weights);
            let as_index = as_model.pick_for_country(country, rng);
            let (down, up) = as_model.sample_link(as_index, rng);
            let nat = NAT_DISTRIBUTION[rng.weighted_index(&nat_weights)].0;
            let uploads_enabled = rng.chance(CUSTOMERS[customer].upload_enabled_fraction);

            // Synthetic IP: AS index in the upper bits, host in the lower —
            // trivially invertible for the log pipeline.
            let host = host_counter[as_index];
            host_counter[as_index] = host.wrapping_add(1);
            let ip = ((as_index as u32 + 1) << 16) | host as u32;

            let clone_group = if i < clone_slots.len() {
                Some(clone_slots[i])
            } else {
                None
            };
            let guid = match clone_group {
                Some(g) => clone_guids[g as usize],
                None => Guid::random(rng),
            };

            let spec = PeerSpec {
                index: PeerIndex(i as u32),
                guid,
                customer,
                country,
                city,
                as_index,
                asn: as_model.specs()[as_index].asn,
                ip,
                nat,
                down,
                up,
                uploads_enabled,
                tz_offset: WORLD_COUNTRIES[country].tz_offset,
                online_start_hour: rng.range_f64(6.0, 12.0),
                online_hours: rng.range_f64(4.0, 18.0),
                clone_group,
            };
            by_region[spec.region().index()].push(i as u32);
            peers.push(spec);
        }

        Population {
            peers,
            as_model,
            by_region,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// A peer by index.
    pub fn peer(&self, idx: PeerIndex) -> &PeerSpec {
        &self.peers[idx.idx()]
    }

    /// Sample a peer located in `region`; falls back to any peer if the
    /// region is unexpectedly empty at this scale.
    pub fn sample_in_region(&self, region: Region, rng: &mut DetRng) -> PeerIndex {
        let pool = &self.by_region[region.index()];
        if pool.is_empty() {
            return PeerIndex(rng.index(self.peers.len()) as u32);
        }
        PeerIndex(pool[rng.index(pool.len())])
    }

    /// Fraction of peers with uploads enabled (the §5.1 headline ~31 %).
    pub fn enabled_fraction(&self) -> f64 {
        self.peers.iter().filter(|p| p.uploads_enabled).count() as f64 / self.peers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::time::{SimDuration, SimTime};
    use std::collections::HashMap;

    fn population() -> Population {
        let mut rng = DetRng::seeded(21);
        Population::generate(
            &PopulationConfig {
                peers: 20_000,
                ases: 400,
                ..PopulationConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn population_has_requested_size() {
        let p = population();
        assert_eq!(p.len(), 20_000);
    }

    /// §5.1: about 31 % of peers have uploads enabled.
    #[test]
    fn enabled_fraction_matches_paper() {
        let p = population();
        let f = p.enabled_fraction();
        assert!((0.26..0.37).contains(&f), "enabled fraction {f}");
    }

    /// §4.2 continental shares survive the sampling.
    #[test]
    fn regional_distribution_is_calibrated() {
        let p = population();
        let eu = p.by_region[Region::Europe.index()].len() as f64 / p.len() as f64;
        assert!((0.28..0.45).contains(&eu), "Europe share {eu}");
        for region in Region::ALL {
            assert!(
                !p.by_region[region.index()].is_empty(),
                "region {region:?} empty"
            );
        }
    }

    #[test]
    fn nat_mix_matches_distribution() {
        let p = population();
        let mut counts: HashMap<NatType, usize> = HashMap::new();
        for peer in &p.peers {
            *counts.entry(peer.nat).or_default() += 1;
        }
        for (nat, want) in NAT_DISTRIBUTION {
            let got = *counts.get(&nat).unwrap_or(&0) as f64 / p.len() as f64;
            assert!(
                (got - want).abs() < 0.02,
                "{nat:?}: got {got:.3}, want {want}"
            );
        }
    }

    #[test]
    fn links_are_asymmetric_on_average() {
        let p = population();
        let down: f64 = p.peers.iter().map(|x| x.down.as_mbps()).sum();
        let up: f64 = p.peers.iter().map(|x| x.up.as_mbps()).sum();
        assert!(down / up > 3.0, "asymmetry {:.2}", down / up);
    }

    #[test]
    fn clone_groups_share_guids() {
        let p = population();
        let mut groups: HashMap<u32, Vec<Guid>> = HashMap::new();
        for peer in &p.peers {
            if let Some(g) = peer.clone_group {
                groups.entry(g).or_default().push(peer.guid);
            }
        }
        assert!(!groups.is_empty(), "no clone groups at this scale");
        for (g, guids) in &groups {
            assert!(guids.len() >= 2, "group {g} has {}", guids.len());
            assert!(
                guids.iter().all(|x| *x == guids[0]),
                "group {g} does not share a GUID"
            );
        }
        // Cloned installs are rare.
        let cloned: usize = groups.values().map(|v| v.len()).sum();
        let frac = cloned as f64 / p.len() as f64;
        assert!((0.002..0.03).contains(&frac), "clone fraction {frac}");
    }

    #[test]
    fn non_clone_guids_are_unique() {
        let p = population();
        let mut seen = std::collections::HashSet::new();
        for peer in p.peers.iter().filter(|p| p.clone_group.is_none()) {
            assert!(seen.insert(peer.guid), "duplicate GUID outside clones");
        }
    }

    #[test]
    fn ips_encode_as_index() {
        let p = population();
        for peer in p.peers.iter().take(500) {
            assert_eq!((peer.ip >> 16) as usize - 1, peer.as_index);
        }
    }

    #[test]
    fn online_window_is_diurnal() {
        let p = population();
        let peer = &p.peers[0];
        // Over one simulated day, the peer must be online for roughly its
        // configured window length.
        let mut online_hours = 0.0;
        for h in 0..24 {
            let t = SimTime::ZERO + SimDuration::from_hours(h) + SimDuration::from_mins(30);
            if peer.online_at(t) {
                online_hours += 1.0;
            }
        }
        assert!(
            (online_hours - peer.online_hours).abs() <= 1.5,
            "online {online_hours}h vs configured {}h",
            peer.online_hours
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PopulationConfig {
            peers: 2000,
            ases: 100,
            ..PopulationConfig::default()
        };
        let mut r1 = DetRng::seeded(5);
        let mut r2 = DetRng::seeded(5);
        let a = Population::generate(&cfg, &mut r1);
        let b = Population::generate(&cfg, &mut r2);
        for (x, y) in a.peers.iter().zip(&b.peers) {
            assert_eq!(x.guid, y.guid);
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.nat, y.nat);
        }
    }
}
