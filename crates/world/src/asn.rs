//! Autonomous-system model.
//!
//! The trace observed 31,190 ASes, with a heavily skewed peer population:
//! "the heavy uploaders simply contain a lot more peers" (Fig 9c). This
//! module generates a scaled AS universe with:
//!
//! * per-country AS sets sized by the country's peer weight,
//! * Pareto-distributed AS sizes (a few giant eyeball networks, a long tail
//!   of tiny ones),
//! * per-AS access-link profiles (fibre / cable / DSL mixes with the strong
//!   down/up asymmetry of residential broadband, per Dischinger et al.,
//!   which the paper cites when explaining Fig 4), and
//! * an AS adjacency graph (direct links) used by the Fig 11 analysis and
//!   the §6.1 "35 % of heavy-pair bytes were exchanged between directly
//!   connected ASes" estimate.

use crate::geo::WORLD_COUNTRIES;
use netsession_core::id::AsNumber;
use netsession_core::rng::DetRng;
use netsession_core::units::Bandwidth;
use std::collections::HashSet;

/// Dominant access technology of an AS — sets its speed profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkProfile {
    /// FTTH-heavy network: very fast down, fast up.
    Fiber,
    /// DOCSIS cable: fast down, modest up.
    Cable,
    /// DSL: modest down, slow up — the classic asymmetric case.
    Dsl,
    /// Mobile broadband: variable, modest both ways.
    Mobile,
}

impl LinkProfile {
    /// Median (down, up) in Mbps for the profile, 2012-era access networks.
    pub fn median_mbps(self) -> (f64, f64) {
        match self {
            LinkProfile::Fiber => (60.0, 25.0),
            LinkProfile::Cable => (25.0, 3.5),
            LinkProfile::Dsl => (8.0, 0.9),
            LinkProfile::Mobile => (6.0, 1.5),
        }
    }
}

/// One autonomous system.
#[derive(Clone, Debug)]
pub struct AsSpec {
    /// Its AS number.
    pub asn: AsNumber,
    /// Index into [`WORLD_COUNTRIES`].
    pub country: usize,
    /// Relative peer-population weight within its country (heavy-tailed).
    pub size_weight: f64,
    /// Access profile.
    pub profile: LinkProfile,
}

/// The generated AS universe.
pub struct AsModel {
    specs: Vec<AsSpec>,
    /// Per-country index lists, aligned with [`WORLD_COUNTRIES`].
    per_country: Vec<Vec<usize>>,
    /// Per-country cumulative weights for sampling.
    country_weights: Vec<Vec<f64>>,
    /// Undirected direct links (normalized: smaller index first).
    links: HashSet<(u32, u32)>,
}

impl AsModel {
    /// Generate roughly `target_total` ASes distributed over the gazetteer
    /// countries proportionally to their peer weight (min 2 per country).
    pub fn generate(target_total: usize, rng: &mut DetRng) -> AsModel {
        let total_weight: f64 = WORLD_COUNTRIES.iter().map(|c| c.peer_weight).sum();
        let mut specs = Vec::new();
        let mut per_country = Vec::with_capacity(WORLD_COUNTRIES.len());
        let mut next_asn = 1000u32;

        for (ci, country) in WORLD_COUNTRIES.iter().enumerate() {
            let n = ((target_total as f64 * country.peer_weight / total_weight).round() as usize)
                .max(2);
            let mut idxs = Vec::with_capacity(n);
            for k in 0..n {
                // Pareto sizes (capped to keep the tail from dwarfing the
                // incumbent): the first AS in each country is the incumbent
                // eyeball network and gets an extra boost.
                let mut w = rng.pareto(1.0, 0.7).min(50.0);
                if k == 0 {
                    w *= 10.0;
                }
                let profile = match rng.weighted_index(&[0.15, 0.40, 0.35, 0.10]) {
                    0 => LinkProfile::Fiber,
                    1 => LinkProfile::Cable,
                    2 => LinkProfile::Dsl,
                    _ => LinkProfile::Mobile,
                };
                idxs.push(specs.len());
                specs.push(AsSpec {
                    asn: AsNumber(next_asn),
                    country: ci,
                    size_weight: w,
                    profile,
                });
                next_asn += 1;
            }
            per_country.push(idxs);
        }

        // Adjacency: incumbents form a near-mesh (international transit);
        // every AS additionally links to a handful of large ASes,
        // preferentially within its own country.
        let mut links = HashSet::new();
        let incumbents: Vec<usize> = per_country.iter().map(|v| v[0]).collect();
        for i in 0..incumbents.len() {
            for j in (i + 1)..incumbents.len() {
                if rng.chance(0.5) {
                    Self::link(&mut links, incumbents[i], incumbents[j]);
                }
            }
        }
        for (idx, spec) in specs.iter().enumerate() {
            let domestic = &per_country[spec.country];
            let k = 2 + rng.index(3);
            for _ in 0..k {
                // 80 %: a domestic AS chosen by size; 20 %: any incumbent.
                let other = if rng.chance(0.8) && domestic.len() > 1 {
                    let weights: Vec<f64> =
                        domestic.iter().map(|i| specs[*i].size_weight).collect();
                    domestic[rng.weighted_index(&weights)]
                } else {
                    incumbents[rng.index(incumbents.len())]
                };
                if other != idx {
                    Self::link(&mut links, idx, other);
                }
            }
        }

        let country_weights = per_country
            .iter()
            .map(|idxs| {
                let mut acc = 0.0;
                idxs.iter()
                    .map(|i| {
                        acc += specs[*i].size_weight;
                        acc
                    })
                    .collect()
            })
            .collect();

        AsModel {
            specs,
            per_country,
            country_weights,
            links,
        }
    }

    fn link(links: &mut HashSet<(u32, u32)>, a: usize, b: usize) {
        let (x, y) = if a < b { (a, b) } else { (b, a) };
        links.insert((x as u32, y as u32));
    }

    /// All AS specs.
    pub fn specs(&self) -> &[AsSpec] {
        &self.specs
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the universe is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Sample an AS for a new peer located in `country` (index into
    /// [`WORLD_COUNTRIES`]), weighted by AS size.
    pub fn pick_for_country(&self, country: usize, rng: &mut DetRng) -> usize {
        let cum = &self.country_weights[country];
        let total = *cum.last().expect("country has ASes");
        let target = rng.f64() * total;
        let pos = cum.partition_point(|c| *c <= target);
        self.per_country[country][pos.min(cum.len() - 1)]
    }

    /// Draw an access link (down, up) for a peer in AS `idx`: lognormal
    /// variation around the profile median, clamped to plausible floors.
    pub fn sample_link(&self, idx: usize, rng: &mut DetRng) -> (Bandwidth, Bandwidth) {
        let (down_med, up_med) = self.specs[idx].profile.median_mbps();
        let factor = rng.lognormal(0.0, 0.5);
        let down = (down_med * factor).clamp(0.5, 1000.0);
        // Upstream varies partly independently (provisioned tiers).
        let up_factor = factor * rng.lognormal(0.0, 0.25);
        let up = (up_med * up_factor).clamp(0.128, 500.0);
        (Bandwidth::from_mbps(down), Bandwidth::from_mbps(up))
    }

    /// Whether two ASes (by index) have a direct link.
    pub fn direct_link(&self, a: usize, b: usize) -> bool {
        let (x, y) = if a < b { (a, b) } else { (b, a) };
        self.links.contains(&(x as u32, y as u32))
    }

    /// Index of the AS with a given number, if present.
    pub fn index_of(&self, asn: AsNumber) -> Option<usize> {
        // AS numbers are assigned densely from 1000.
        let idx = (asn.0 as usize).checked_sub(1000)?;
        (idx < self.specs.len()).then_some(idx)
    }

    /// Number of direct links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AsModel {
        let mut rng = DetRng::seeded(7);
        AsModel::generate(400, &mut rng)
    }

    #[test]
    fn generates_roughly_target_count() {
        let m = model();
        assert!(
            (300..600).contains(&m.len()),
            "AS count {} far from target",
            m.len()
        );
        // Every country represented by at least two ASes.
        for (ci, idxs) in m.per_country.iter().enumerate() {
            assert!(idxs.len() >= 2, "country {ci} has {}", idxs.len());
        }
    }

    #[test]
    fn as_sizes_are_heavy_tailed() {
        let m = model();
        let mut weights: Vec<f64> = m.specs().iter().map(|s| s.size_weight).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = weights.iter().sum();
        let top_decile: f64 = weights[..weights.len() / 10].iter().sum();
        assert!(
            top_decile / total > 0.5,
            "top 10% of ASes hold {:.0}% of weight — not heavy-tailed",
            100.0 * top_decile / total
        );
    }

    #[test]
    fn pick_for_country_respects_country() {
        let m = model();
        let mut rng = DetRng::seeded(8);
        for country in [0usize, 5, 20] {
            for _ in 0..50 {
                let idx = m.pick_for_country(country, &mut rng);
                assert_eq!(m.specs()[idx].country, country);
            }
        }
    }

    #[test]
    fn pick_prefers_large_ases() {
        let m = model();
        let mut rng = DetRng::seeded(9);
        let country = 0;
        let mut counts = vec![0usize; m.per_country[country].len()];
        for _ in 0..5000 {
            let idx = m.pick_for_country(country, &mut rng);
            let pos = m.per_country[country]
                .iter()
                .position(|i| *i == idx)
                .unwrap();
            counts[pos] += 1;
        }
        // Picks must track size weight: the heaviest AS collects far more
        // than an average one, and pick counts correlate with weights.
        let weights: Vec<f64> = m.per_country[country]
            .iter()
            .map(|i| m.specs()[*i].size_weight)
            .collect();
        let heaviest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            counts[heaviest] as f64 > 3.0 * mean,
            "heaviest AS got {} picks vs mean {mean:.1}",
            counts[heaviest]
        );
        // Rank correlation (coarse): total picks of the top-weight half
        // exceed the bottom half.
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|a, b| weights[*b].partial_cmp(&weights[*a]).unwrap());
        let top: usize = order[..order.len() / 2].iter().map(|i| counts[*i]).sum();
        let bottom: usize = order[order.len() / 2..].iter().map(|i| counts[*i]).sum();
        assert!(top > bottom * 2, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn sampled_links_are_asymmetric_broadband() {
        let m = model();
        let mut rng = DetRng::seeded(10);
        let mut down_sum = 0.0;
        let mut up_sum = 0.0;
        for _ in 0..2000 {
            let idx = rng.index(m.len());
            let (down, up) = m.sample_link(idx, &mut rng);
            assert!(down.as_mbps() >= 0.5 && down.as_mbps() <= 1000.0);
            assert!(up.as_mbps() >= 0.128 && up.as_mbps() <= 500.0);
            down_sum += down.as_mbps();
            up_sum += up.as_mbps();
        }
        assert!(
            down_sum / up_sum > 3.0,
            "aggregate asymmetry {:.1} too low",
            down_sum / up_sum
        );
    }

    #[test]
    fn adjacency_is_symmetric_and_nontrivial() {
        let m = model();
        assert!(m.link_count() > m.len(), "too few links");
        for (a, b) in m.links.iter().take(100) {
            assert!(m.direct_link(*a as usize, *b as usize));
            assert!(m.direct_link(*b as usize, *a as usize));
            assert_ne!(a, b);
        }
    }

    #[test]
    fn index_of_roundtrips() {
        let m = model();
        for (i, s) in m.specs().iter().enumerate().take(20) {
            assert_eq!(m.index_of(s.asn), Some(i));
        }
        assert_eq!(m.index_of(AsNumber(1)), None);
        assert_eq!(m.index_of(AsNumber(1000 + m.len() as u32)), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = DetRng::seeded(42);
        let mut r2 = DetRng::seeded(42);
        let a = AsModel::generate(200, &mut r1);
        let b = AsModel::generate(200, &mut r2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.link_count(), b.link_count());
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.size_weight, y.size_weight);
        }
    }
}
