//! User mobility.
//!
//! §6.2: "80.6 % of the GUIDs connected from a single AS, 13.4 % from two
//! different ASes, and 6 % from more than two"; "77 % remained within
//! 10 km, and … 23 % were more than 10 km apart". Each peer gets a set of
//! *login sites* (IP, AS, location) and a sampling rule; the simulation
//! draws a site per login, and the analytics recover the mobility mix from
//! the resulting login records.

use crate::asn::AsModel;
use crate::geo::WORLD_COUNTRIES;
use crate::population::PeerSpec;
use netsession_core::id::AsNumber;
use netsession_core::rng::DetRng;

/// One place a peer logs in from.
#[derive(Clone, Debug, PartialEq)]
pub struct LoginSite {
    /// Public IP at this site.
    pub ip: u32,
    /// AS index (into the [`AsModel`]).
    pub as_index: usize,
    /// AS number.
    pub asn: AsNumber,
    /// Country index.
    pub country: usize,
    /// City index within the country.
    pub city: usize,
    /// Coordinates.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
}

/// A peer's mobility plan: its sites and how often it roams.
#[derive(Clone, Debug)]
pub struct MobilityPlan {
    /// Sites; index 0 is home.
    pub sites: Vec<LoginSite>,
    /// Probability a given login happens away from home.
    pub roam_probability: f64,
}

/// Mobility mix parameters, defaults calibrated to §6.2.
#[derive(Clone, Debug)]
pub struct MobilityConfig {
    /// P(exactly two ASes) — paper: 0.134.
    pub two_as: f64,
    /// P(more than two ASes) — paper: 0.06.
    pub more_as: f64,
    /// P(a secondary site is in a different city) given it exists; tuned so
    /// ~23 % of GUIDs exceed 10 km.
    pub secondary_far: f64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            two_as: 0.134,
            more_as: 0.06,
            secondary_far: 0.95,
        }
    }
}

impl MobilityPlan {
    /// Build a plan for `peer`.
    pub fn generate(
        peer: &PeerSpec,
        as_model: &AsModel,
        cfg: &MobilityConfig,
        rng: &mut DetRng,
    ) -> MobilityPlan {
        let home_city = &WORLD_COUNTRIES[peer.country].cities[peer.city];
        let home = LoginSite {
            ip: peer.ip,
            as_index: peer.as_index,
            asn: peer.asn,
            country: peer.country,
            city: peer.city,
            lat: home_city.lat,
            lon: home_city.lon,
        };
        let extra_as = match rng.f64() {
            x if x < cfg.more_as => 2 + rng.index(2),
            x if x < cfg.more_as + cfg.two_as => 1,
            _ => 0,
        };
        let mut sites = vec![home];
        for k in 0..extra_as {
            // Secondary site: a *different* AS in the same country
            // (work/home split), usually in a different city. Bounded
            // redraws avoid collapsing two-AS plans into one AS.
            let mut as_index = as_model.pick_for_country(peer.country, rng);
            for _ in 0..16 {
                if as_index != peer.as_index
                    && !sites.iter().any(|s: &LoginSite| s.as_index == as_index)
                {
                    break;
                }
                as_index = as_model.pick_for_country(peer.country, rng);
            }
            let (country, city) = if rng.chance(cfg.secondary_far) {
                let cities = WORLD_COUNTRIES[peer.country].cities;
                let mut city = rng.index(cities.len());
                if cities.len() > 1 {
                    while city == peer.city {
                        city = rng.index(cities.len());
                    }
                }
                (peer.country, city)
            } else {
                (peer.country, peer.city)
            };
            let c = &WORLD_COUNTRIES[country].cities[city];
            let host = 60000 + (peer.index.0 % 5000) * 4 + k as u32;
            sites.push(LoginSite {
                ip: ((as_index as u32 + 1) << 16) | (host & 0xffff),
                as_index,
                asn: as_model.specs()[as_index].asn,
                country,
                city,
                lat: c.lat,
                lon: c.lon,
            });
        }
        MobilityPlan {
            sites,
            roam_probability: if extra_as == 0 {
                0.0
            } else {
                rng.range_f64(0.15, 0.45)
            },
        }
    }

    /// Draw the site for one login.
    pub fn sample_site(&self, rng: &mut DetRng) -> &LoginSite {
        if self.sites.len() > 1 && rng.chance(self.roam_probability) {
            &self.sites[1 + rng.index(self.sites.len() - 1)]
        } else {
            &self.sites[0]
        }
    }

    /// Number of distinct ASes in the plan.
    pub fn distinct_ases(&self) -> usize {
        let mut ases: Vec<usize> = self.sites.iter().map(|s| s.as_index).collect();
        ases.sort_unstable();
        ases.dedup();
        ases.len()
    }

    /// Maximum pairwise distance between the plan's sites, km.
    pub fn max_distance_km(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.sites.len() {
            for j in (i + 1)..self.sites.len() {
                let a = &self.sites[i];
                let b = &self.sites[j];
                max = max.max(netsession_sim_haversine(a.lat, a.lon, b.lat, b.lon));
            }
        }
        max
    }
}

/// Haversine distance (km). Duplicated trivially here to keep `world`
/// independent of the sim crate; the formula is covered by tests in both
/// places.
fn netsession_sim_haversine(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const R: f64 = 6371.0;
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * R * a.sqrt().atan2((1.0 - a).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationConfig};

    fn plans() -> Vec<MobilityPlan> {
        let mut rng = DetRng::seeded(41);
        let pop = Population::generate(
            &PopulationConfig {
                peers: 12_000,
                ases: 300,
                ..PopulationConfig::default()
            },
            &mut rng,
        );
        let cfg = MobilityConfig::default();
        pop.peers
            .iter()
            .map(|p| MobilityPlan::generate(p, &pop.as_model, &cfg, &mut rng))
            .collect()
    }

    /// §6.2: 80.6 % single-AS, 13.4 % two, 6 % more than two.
    #[test]
    fn as_count_mix_matches_paper() {
        let plans = plans();
        let n = plans.len() as f64;
        let one = plans.iter().filter(|p| p.distinct_ases() == 1).count() as f64 / n;
        let two = plans.iter().filter(|p| p.distinct_ases() == 2).count() as f64 / n;
        let more = plans.iter().filter(|p| p.distinct_ases() > 2).count() as f64 / n;
        assert!((0.76..0.86).contains(&one), "single-AS {one}");
        assert!((0.10..0.18).contains(&two), "two-AS {two}");
        assert!((0.03..0.09).contains(&more), "more-AS {more}");
    }

    /// §6.2: 77 % of GUIDs stay within 10 km.
    #[test]
    fn distance_mix_matches_paper() {
        let plans = plans();
        let n = plans.len() as f64;
        let near = plans.iter().filter(|p| p.max_distance_km() <= 10.0).count() as f64 / n;
        assert!((0.70..0.88).contains(&near), "within-10km fraction {near}");
    }

    #[test]
    fn home_site_dominates_logins() {
        let plans = plans();
        let mut rng = DetRng::seeded(43);
        let plan = plans.iter().find(|p| p.sites.len() > 1).expect("a roamer");
        let mut home = 0;
        let n = 2000;
        for _ in 0..n {
            if plan.sample_site(&mut rng) == &plan.sites[0] {
                home += 1;
            }
        }
        let frac = home as f64 / n as f64;
        assert!(frac > 0.5, "home fraction {frac}");
    }

    #[test]
    fn stationary_peers_always_log_in_from_home() {
        let plans = plans();
        let mut rng = DetRng::seeded(44);
        let plan = plans
            .iter()
            .find(|p| p.sites.len() == 1)
            .expect("stationary");
        for _ in 0..50 {
            assert_eq!(plan.sample_site(&mut rng), &plan.sites[0]);
        }
    }

    #[test]
    fn secondary_sites_have_valid_geography() {
        for plan in plans() {
            for s in &plan.sites {
                assert!(s.country < WORLD_COUNTRIES.len());
                assert!(s.city < WORLD_COUNTRIES[s.country].cities.len());
                assert!((-90.0..=90.0).contains(&s.lat));
            }
        }
    }
}
