//! Content providers ("customers").
//!
//! The paper anonymizes its ten largest content providers as Customers A–J
//! and reports, for each: the regional distribution of their downloads
//! (Table 2) and the fraction of their peers that have content uploads
//! enabled (Table 4) — which is driven by which binary variant the customer
//! bundles (§5.1). This module carries those calibrated profiles; the
//! catalog and workload generators consume them.

use netsession_core::id::CpCode;
use netsession_core::policy::UploadDefault;

/// What kind of content a provider predominantly distributes; drives the
/// object-size mixture (§4.4: "a typical use case … was the distribution of
/// software installers").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentProfile {
    /// Multi-GB game clients and patches — the flagship peer-assist case.
    Games,
    /// Application installers, hundreds of MB.
    Software,
    /// Mixed media and data files, mostly small.
    Media,
}

/// A calibrated content-provider profile.
#[derive(Clone, Debug)]
pub struct Customer {
    /// Anonymized name, "A" through "J".
    pub name: &'static str,
    /// CP code used in logs.
    pub cp: CpCode,
    /// Share of total downloads attributable to this provider.
    pub download_share: f64,
    /// Share of the *peer population* that installed this provider's binary
    /// (proxy: who acquired users).
    pub install_share: f64,
    /// Table 2 row: download shares over `geo::Region::ALL` (sums to ~1).
    pub region_mix: [f64; 9],
    /// Which binary variant this provider bundles (drives Table 4): the
    /// fraction of its peers with uploads enabled equals this default's
    /// adoption since users almost never change it (Table 3).
    pub upload_default: UploadDefault,
    /// Fraction of this provider's installs with uploads enabled — Table 4.
    /// (Equals ~0 or ~1 for a pure default; middling values mean the
    /// provider ships both variants across products.)
    pub upload_enabled_fraction: f64,
    /// Content profile, driving object sizes and p2p enablement.
    pub profile: ContentProfile,
}

/// Table-2 row constructor (percentages, may sum slightly off 100 due to
/// the paper's rounding; normalized at use).
#[allow(clippy::too_many_arguments)] // one arg per Table-2 column, in order
const fn mix(
    us_east: f64,
    us_west: f64,
    other_am: f64,
    india: f64,
    china: f64,
    other_asia: f64,
    europe: f64,
    africa: f64,
    oceania: f64,
) -> [f64; 9] {
    [
        us_east, us_west, other_am, india, china, other_asia, europe, africa, oceania,
    ]
}

/// The ten largest content providers, calibrated to Tables 2 and 4.
pub const CUSTOMERS: &[Customer] = &[
    Customer {
        name: "A",
        cp: CpCode(101),
        download_share: 0.18,
        install_share: 0.18,
        region_mix: mix(0.0, 0.0, 0.12, 0.06, 0.06, 0.18, 0.51, 0.04, 0.03),
        upload_default: UploadDefault::Disabled,
        upload_enabled_fraction: 0.005,
        profile: ContentProfile::Software,
    },
    Customer {
        name: "B",
        cp: CpCode(102),
        download_share: 0.07,
        install_share: 0.07,
        region_mix: mix(0.02, 0.01, 0.01, 0.11, 0.0, 0.61, 0.06, 0.17, 0.01),
        upload_default: UploadDefault::Disabled,
        upload_enabled_fraction: 0.20,
        profile: ContentProfile::Software,
    },
    Customer {
        name: "C",
        cp: CpCode(103),
        download_share: 0.09,
        install_share: 0.09,
        region_mix: mix(0.13, 0.06, 0.15, 0.01, 0.0, 0.08, 0.55, 0.01, 0.02),
        upload_default: UploadDefault::Disabled,
        upload_enabled_fraction: 0.02,
        profile: ContentProfile::Media,
    },
    Customer {
        name: "D",
        cp: CpCode(104),
        download_share: 0.15,
        install_share: 0.15,
        region_mix: mix(0.22, 0.21, 0.06, 0.0, 0.0, 0.03, 0.45, 0.0, 0.03),
        upload_default: UploadDefault::Enabled,
        upload_enabled_fraction: 0.94,
        profile: ContentProfile::Games,
    },
    Customer {
        name: "E",
        cp: CpCode(105),
        download_share: 0.08,
        install_share: 0.08,
        region_mix: mix(0.05, 0.03, 0.08, 0.02, 0.01, 0.29, 0.48, 0.02, 0.03),
        upload_default: UploadDefault::Disabled,
        upload_enabled_fraction: 0.02,
        profile: ContentProfile::Software,
    },
    Customer {
        name: "F",
        cp: CpCode(106),
        download_share: 0.03,
        install_share: 0.03,
        region_mix: mix(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0),
        upload_default: UploadDefault::Enabled,
        upload_enabled_fraction: 0.45,
        profile: ContentProfile::Games,
    },
    Customer {
        name: "G",
        cp: CpCode(107),
        download_share: 0.12,
        install_share: 0.12,
        region_mix: mix(0.08, 0.03, 0.12, 0.02, 0.08, 0.20, 0.45, 0.02, 0.02),
        upload_default: UploadDefault::Enabled,
        upload_enabled_fraction: 0.47,
        profile: ContentProfile::Games,
    },
    Customer {
        name: "H",
        cp: CpCode(108),
        download_share: 0.12,
        install_share: 0.12,
        region_mix: mix(0.06, 0.04, 0.07, 0.04, 0.02, 0.20, 0.53, 0.02, 0.02),
        upload_default: UploadDefault::Disabled,
        upload_enabled_fraction: 0.005,
        profile: ContentProfile::Software,
    },
    Customer {
        name: "I",
        cp: CpCode(109),
        download_share: 0.10,
        install_share: 0.10,
        region_mix: mix(0.05, 0.02, 0.18, 0.0, 0.0, 0.15, 0.57, 0.01, 0.01),
        upload_default: UploadDefault::Enabled,
        upload_enabled_fraction: 0.91,
        profile: ContentProfile::Games,
    },
    Customer {
        name: "J",
        cp: CpCode(110),
        download_share: 0.05,
        install_share: 0.05,
        region_mix: mix(0.42, 0.24, 0.14, 0.0, 0.0, 0.05, 0.11, 0.01, 0.03),
        upload_default: UploadDefault::Disabled,
        upload_enabled_fraction: 0.005,
        profile: ContentProfile::Media,
    },
];

/// Find a customer by name ("A" … "J").
pub fn customer_by_name(name: &str) -> Option<&'static Customer> {
    CUSTOMERS.iter().find(|c| c.name == name)
}

/// Find a customer by CP code.
pub fn customer_by_cp(cp: CpCode) -> Option<&'static Customer> {
    CUSTOMERS.iter().find(|c| c.cp == cp)
}

/// The "All customers" Table-2 row implied by the profiles: the
/// download-share-weighted mixture of the per-customer rows.
pub fn aggregate_region_mix() -> [f64; 9] {
    let mut out = [0.0; 9];
    let total: f64 = CUSTOMERS.iter().map(|c| c.download_share).sum();
    for c in CUSTOMERS {
        let row_sum: f64 = c.region_mix.iter().sum();
        for (o, m) in out.iter_mut().zip(c.region_mix.iter()) {
            *o += c.download_share / total * m / row_sum;
        }
    }
    out
}

/// Expected system-wide uploads-enabled fraction implied by the profiles —
/// should land near the paper's ~31 % (Table 3: 7.40 M of 23.3 M peers).
pub fn expected_enabled_fraction() -> f64 {
    let total: f64 = CUSTOMERS.iter().map(|c| c.install_share).sum();
    CUSTOMERS
        .iter()
        .map(|c| c.install_share / total * c.upload_enabled_fraction)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;

    #[test]
    fn ten_customers_with_unique_identity() {
        assert_eq!(CUSTOMERS.len(), 10);
        let mut names: Vec<_> = CUSTOMERS.iter().map(|c| c.name).collect();
        names.dedup();
        assert_eq!(names.len(), 10);
        for (i, c) in CUSTOMERS.iter().enumerate() {
            assert_eq!(c.name.as_bytes()[0], b'A' + i as u8);
        }
    }

    #[test]
    fn region_mixes_are_normalized_distributions() {
        for c in CUSTOMERS {
            let sum: f64 = c.region_mix.iter().sum();
            assert!(
                (0.95..=1.05).contains(&sum),
                "customer {} mix sums to {sum}",
                c.name
            );
            assert!(c.region_mix.iter().all(|m| *m >= 0.0));
        }
    }

    #[test]
    fn download_shares_form_a_distribution() {
        let sum: f64 = CUSTOMERS.iter().map(|c| c.download_share).sum();
        assert!((0.98..=1.02).contains(&sum), "shares sum {sum}");
    }

    /// Table 4 spot checks: D and I ship uploads-on binaries, A/H/J ship
    /// uploads-off.
    #[test]
    fn table4_profile_spot_checks() {
        assert!(customer_by_name("D").unwrap().upload_enabled_fraction > 0.9);
        assert!(customer_by_name("I").unwrap().upload_enabled_fraction > 0.9);
        assert!(customer_by_name("A").unwrap().upload_enabled_fraction < 0.01);
        assert!(customer_by_name("J").unwrap().upload_enabled_fraction < 0.01);
        assert_eq!(
            customer_by_name("D").unwrap().upload_default,
            UploadDefault::Enabled
        );
    }

    /// §5.1: "About 31 % of the peers have uploading enabled."
    #[test]
    fn implied_global_enabled_fraction_matches_paper() {
        let f = expected_enabled_fraction();
        assert!((0.27..0.36).contains(&f), "enabled fraction {f}");
    }

    /// The aggregate row must be close to Table 2's "All customers":
    /// 7/4/11/3/2/20/46/4/2 (%).
    #[test]
    fn aggregate_mix_matches_all_customers_row() {
        let agg = aggregate_region_mix();
        let paper = [0.07, 0.04, 0.11, 0.03, 0.02, 0.20, 0.46, 0.04, 0.02];
        for (i, (got, want)) in agg.iter().zip(paper.iter()).enumerate() {
            assert!(
                (got - want).abs() < 0.045,
                "region {:?}: got {got:.3}, paper {want}",
                Region::ALL[i]
            );
        }
    }

    #[test]
    fn lookups_work() {
        assert_eq!(customer_by_name("F").unwrap().cp, CpCode(106));
        assert_eq!(customer_by_cp(CpCode(109)).unwrap().name, "I");
        assert!(customer_by_name("Z").is_none());
    }

    #[test]
    fn customer_f_is_europe_only() {
        let f = customer_by_name("F").unwrap();
        assert_eq!(f.region_mix[Region::Europe.index()], 1.0);
        assert_eq!(f.region_mix.iter().sum::<f64>(), 1.0);
    }
}
