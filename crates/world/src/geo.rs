//! Geography: regions, countries, cities.
//!
//! The paper's analyses use three geographic granularities: the nine
//! regions of Table 2 (US East, US West, Other Americas, India, China,
//! Other Asia, Europe, Africa, Oceania), ISO country codes (239 observed),
//! and EdgeScape city-level locations with latitude/longitude (34,383
//! distinct locations). This module carries a compact static gazetteer —
//! enough countries and cities to make every per-region and per-country
//! analysis meaningful — with peer-population weights calibrated to §4.2
//! ("most of the peers are located in North America (27 %) and Europe
//! (35 %), but there are also sizable groups … in South America and Asia").

/// The nine regions of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// United States, east of roughly -100° longitude.
    UsEast,
    /// United States, west.
    UsWest,
    /// The Americas outside the US.
    OtherAmericas,
    /// India.
    India,
    /// China.
    China,
    /// Asia except India and China (incl. the Middle East, per the paper's
    /// coarse bucketing).
    OtherAsia,
    /// Europe (incl. Russia and Turkey, the usual EdgeScape convention).
    Europe,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
}

impl Region {
    /// All regions in Table 2 column order.
    pub const ALL: [Region; 9] = [
        Region::UsEast,
        Region::UsWest,
        Region::OtherAmericas,
        Region::India,
        Region::China,
        Region::OtherAsia,
        Region::Europe,
        Region::Africa,
        Region::Oceania,
    ];

    /// Table-2 column header.
    pub fn label(self) -> &'static str {
        match self {
            Region::UsEast => "US East",
            Region::UsWest => "US West",
            Region::OtherAmericas => "Other Americas",
            Region::India => "India",
            Region::China => "China",
            Region::OtherAsia => "Other Asia",
            Region::Europe => "Europe",
            Region::Africa => "Africa",
            Region::Oceania => "Oceania",
        }
    }

    /// Dense index (matches [`Region::ALL`] order).
    pub fn index(self) -> usize {
        Region::ALL.iter().position(|r| *r == self).unwrap()
    }
}

/// A city with coordinates. Location granularity mirrors EdgeScape's
/// city/suburb level (§4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
    /// Relative population weight within its country.
    pub weight: f64,
}

/// A country entry in the gazetteer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Country {
    /// ISO 3166 alpha-2 code.
    pub iso: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Table-2 region. For the US this is refined per-city (east/west).
    pub region: Region,
    /// Timezone as a GMT offset in hours (coarse; per-country).
    pub tz_offset: i32,
    /// Share of the global peer population located here (weights need not
    /// sum to 1; they are normalized at use).
    pub peer_weight: f64,
    /// Cities peers can be located in.
    pub cities: &'static [City],
}

macro_rules! city {
    ($name:expr, $lat:expr, $lon:expr, $w:expr) => {
        City {
            name: $name,
            lat: $lat,
            lon: $lon,
            weight: $w,
        }
    };
}

/// The static gazetteer. Weights are calibrated so the continental shares
/// match §4.2 (see `continental_shares` test).
pub const WORLD_COUNTRIES: &[Country] = &[
    // ---- North America: ~27% together with Canada/Mexico in OtherAmericas.
    Country {
        iso: "US",
        name: "United States",
        region: Region::UsEast, // refined per-city via `us_city_region`
        tz_offset: -5,
        peer_weight: 20.0,
        cities: &[
            city!("New York", 40.71, -74.01, 3.0),
            city!("Philadelphia", 39.95, -75.16, 1.2),
            city!("Boston", 42.36, -71.06, 1.0),
            city!("Atlanta", 33.75, -84.39, 1.2),
            city!("Miami", 25.76, -80.19, 1.0),
            city!("Chicago", 41.88, -87.63, 1.6),
            city!("Dallas", 32.78, -96.80, 1.3),
            city!("Houston", 29.76, -95.37, 1.2),
            city!("Seattle", 47.61, -122.33, 1.0),
            city!("San Francisco", 37.77, -122.42, 1.2),
            city!("Los Angeles", 34.05, -118.24, 2.2),
            city!("Denver", 39.74, -104.99, 0.8),
            city!("Phoenix", 33.45, -112.07, 0.8),
        ],
    },
    Country {
        iso: "CA",
        name: "Canada",
        region: Region::OtherAmericas,
        tz_offset: -5,
        peer_weight: 2.6,
        cities: &[
            city!("Toronto", 43.65, -79.38, 2.0),
            city!("Montreal", 45.50, -73.57, 1.2),
            city!("Vancouver", 49.28, -123.12, 1.0),
        ],
    },
    Country {
        iso: "MX",
        name: "Mexico",
        region: Region::OtherAmericas,
        tz_offset: -6,
        peer_weight: 1.8,
        cities: &[
            city!("Mexico City", 19.43, -99.13, 2.0),
            city!("Guadalajara", 20.66, -103.35, 1.0),
            city!("Monterrey", 25.69, -100.32, 0.8),
        ],
    },
    // ---- South America.
    Country {
        iso: "BR",
        name: "Brazil",
        region: Region::OtherAmericas,
        tz_offset: -3,
        peer_weight: 4.2,
        cities: &[
            city!("Sao Paulo", -23.55, -46.63, 2.5),
            city!("Rio de Janeiro", -22.91, -43.17, 1.5),
            city!("Brasilia", -15.79, -47.88, 0.8),
            city!("Porto Alegre", -30.03, -51.22, 0.7),
        ],
    },
    Country {
        iso: "AR",
        name: "Argentina",
        region: Region::OtherAmericas,
        tz_offset: -3,
        peer_weight: 1.4,
        cities: &[
            city!("Buenos Aires", -34.60, -58.38, 2.0),
            city!("Cordoba", -31.42, -64.18, 0.8),
        ],
    },
    Country {
        iso: "CL",
        name: "Chile",
        region: Region::OtherAmericas,
        tz_offset: -4,
        peer_weight: 0.7,
        cities: &[city!("Santiago", -33.45, -70.67, 1.0)],
    },
    Country {
        iso: "CO",
        name: "Colombia",
        region: Region::OtherAmericas,
        tz_offset: -5,
        peer_weight: 0.9,
        cities: &[
            city!("Bogota", 4.71, -74.07, 1.5),
            city!("Medellin", 6.24, -75.58, 0.8),
        ],
    },
    Country {
        iso: "PE",
        name: "Peru",
        region: Region::OtherAmericas,
        tz_offset: -5,
        peer_weight: 0.5,
        cities: &[city!("Lima", -12.05, -77.04, 1.0)],
    },
    // ---- Europe: ~35%.
    Country {
        iso: "DE",
        name: "Germany",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 4.6,
        cities: &[
            city!("Berlin", 52.52, 13.40, 1.5),
            city!("Munich", 48.14, 11.58, 1.1),
            city!("Hamburg", 53.55, 9.99, 0.9),
            city!("Frankfurt", 50.11, 8.68, 0.9),
        ],
    },
    Country {
        iso: "FR",
        name: "France",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 3.9,
        cities: &[
            city!("Paris", 48.86, 2.35, 2.2),
            city!("Lyon", 45.76, 4.84, 0.8),
            city!("Marseille", 43.30, 5.37, 0.7),
        ],
    },
    Country {
        iso: "GB",
        name: "United Kingdom",
        region: Region::Europe,
        tz_offset: 0,
        peer_weight: 3.9,
        cities: &[
            city!("London", 51.51, -0.13, 2.5),
            city!("Manchester", 53.48, -2.24, 0.9),
            city!("Glasgow", 55.86, -4.25, 0.6),
        ],
    },
    Country {
        iso: "IT",
        name: "Italy",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 2.7,
        cities: &[
            city!("Rome", 41.90, 12.50, 1.4),
            city!("Milan", 45.46, 9.19, 1.2),
            city!("Naples", 40.85, 14.27, 0.7),
        ],
    },
    Country {
        iso: "ES",
        name: "Spain",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 2.4,
        cities: &[
            city!("Madrid", 40.42, -3.70, 1.5),
            city!("Barcelona", 41.39, 2.17, 1.2),
            city!("Valencia", 39.47, -0.38, 0.6),
        ],
    },
    Country {
        iso: "PL",
        name: "Poland",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 2.1,
        cities: &[
            city!("Warsaw", 52.23, 21.01, 1.4),
            city!("Krakow", 50.06, 19.94, 0.8),
            city!("Wroclaw", 51.11, 17.03, 0.6),
        ],
    },
    Country {
        iso: "NL",
        name: "Netherlands",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 1.3,
        cities: &[
            city!("Amsterdam", 52.37, 4.90, 1.2),
            city!("Rotterdam", 51.92, 4.48, 0.7),
        ],
    },
    Country {
        iso: "SE",
        name: "Sweden",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 1.0,
        cities: &[
            city!("Stockholm", 59.33, 18.07, 1.2),
            city!("Gothenburg", 57.71, 11.97, 0.6),
        ],
    },
    Country {
        iso: "NO",
        name: "Norway",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 0.6,
        cities: &[city!("Oslo", 59.91, 10.75, 1.0)],
    },
    Country {
        iso: "FI",
        name: "Finland",
        region: Region::Europe,
        tz_offset: 2,
        peer_weight: 0.6,
        cities: &[city!("Helsinki", 60.17, 24.94, 1.0)],
    },
    Country {
        iso: "DK",
        name: "Denmark",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 0.6,
        cities: &[city!("Copenhagen", 55.68, 12.57, 1.0)],
    },
    Country {
        iso: "BE",
        name: "Belgium",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 0.8,
        cities: &[city!("Brussels", 50.85, 4.35, 1.0)],
    },
    Country {
        iso: "CH",
        name: "Switzerland",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 0.7,
        cities: &[
            city!("Zurich", 47.38, 8.54, 1.0),
            city!("Geneva", 46.20, 6.14, 0.6),
        ],
    },
    Country {
        iso: "AT",
        name: "Austria",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 0.7,
        cities: &[city!("Vienna", 48.21, 16.37, 1.0)],
    },
    Country {
        iso: "CZ",
        name: "Czechia",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 0.8,
        cities: &[city!("Prague", 50.08, 14.44, 1.0)],
    },
    Country {
        iso: "PT",
        name: "Portugal",
        region: Region::Europe,
        tz_offset: 0,
        peer_weight: 0.8,
        cities: &[
            city!("Lisbon", 38.72, -9.14, 1.0),
            city!("Porto", 41.15, -8.61, 0.6),
        ],
    },
    Country {
        iso: "GR",
        name: "Greece",
        region: Region::Europe,
        tz_offset: 2,
        peer_weight: 0.7,
        cities: &[city!("Athens", 37.98, 23.73, 1.0)],
    },
    Country {
        iso: "RO",
        name: "Romania",
        region: Region::Europe,
        tz_offset: 2,
        peer_weight: 0.9,
        cities: &[city!("Bucharest", 44.43, 26.10, 1.0)],
    },
    Country {
        iso: "HU",
        name: "Hungary",
        region: Region::Europe,
        tz_offset: 1,
        peer_weight: 0.6,
        cities: &[city!("Budapest", 47.50, 19.04, 1.0)],
    },
    Country {
        iso: "UA",
        name: "Ukraine",
        region: Region::Europe,
        tz_offset: 2,
        peer_weight: 0.9,
        cities: &[
            city!("Kyiv", 50.45, 30.52, 1.2),
            city!("Kharkiv", 49.99, 36.23, 0.6),
        ],
    },
    Country {
        iso: "RU",
        name: "Russia",
        region: Region::Europe,
        tz_offset: 3,
        peer_weight: 2.4,
        cities: &[
            city!("Moscow", 55.76, 37.62, 2.0),
            city!("Saint Petersburg", 59.93, 30.36, 1.0),
            city!("Novosibirsk", 55.03, 82.92, 0.5),
        ],
    },
    Country {
        iso: "TR",
        name: "Turkey",
        region: Region::Europe,
        tz_offset: 3,
        peer_weight: 1.2,
        cities: &[
            city!("Istanbul", 41.01, 28.98, 1.6),
            city!("Ankara", 39.93, 32.86, 0.7),
        ],
    },
    // ---- Asia.
    Country {
        iso: "IN",
        name: "India",
        region: Region::India,
        tz_offset: 5, // coarse (IST is +5:30)
        peer_weight: 3.2,
        cities: &[
            city!("Mumbai", 19.08, 72.88, 1.6),
            city!("Delhi", 28.61, 77.21, 1.5),
            city!("Bangalore", 12.97, 77.59, 1.2),
            city!("Chennai", 13.08, 80.27, 0.8),
        ],
    },
    Country {
        iso: "CN",
        name: "China",
        region: Region::China,
        tz_offset: 8,
        peer_weight: 2.2,
        cities: &[
            city!("Beijing", 39.90, 116.41, 1.5),
            city!("Shanghai", 31.23, 121.47, 1.5),
            city!("Guangzhou", 23.13, 113.26, 1.0),
        ],
    },
    Country {
        iso: "JP",
        name: "Japan",
        region: Region::OtherAsia,
        tz_offset: 9,
        peer_weight: 2.8,
        cities: &[
            city!("Tokyo", 35.68, 139.69, 2.2),
            city!("Osaka", 34.69, 135.50, 1.0),
            city!("Nagoya", 35.18, 136.91, 0.6),
        ],
    },
    Country {
        iso: "KR",
        name: "South Korea",
        region: Region::OtherAsia,
        tz_offset: 9,
        peer_weight: 1.7,
        cities: &[
            city!("Seoul", 37.57, 126.98, 1.8),
            city!("Busan", 35.18, 129.08, 0.7),
        ],
    },
    Country {
        iso: "TW",
        name: "Taiwan",
        region: Region::OtherAsia,
        tz_offset: 8,
        peer_weight: 1.2,
        cities: &[city!("Taipei", 25.03, 121.57, 1.0)],
    },
    Country {
        iso: "ID",
        name: "Indonesia",
        region: Region::OtherAsia,
        tz_offset: 7,
        peer_weight: 1.3,
        cities: &[
            city!("Jakarta", -6.21, 106.85, 1.5),
            city!("Surabaya", -7.26, 112.75, 0.6),
        ],
    },
    Country {
        iso: "TH",
        name: "Thailand",
        region: Region::OtherAsia,
        tz_offset: 7,
        peer_weight: 1.0,
        cities: &[city!("Bangkok", 13.76, 100.50, 1.0)],
    },
    Country {
        iso: "VN",
        name: "Vietnam",
        region: Region::OtherAsia,
        tz_offset: 7,
        peer_weight: 0.9,
        cities: &[
            city!("Hanoi", 21.03, 105.85, 0.9),
            city!("Ho Chi Minh City", 10.82, 106.63, 1.0),
        ],
    },
    Country {
        iso: "PH",
        name: "Philippines",
        region: Region::OtherAsia,
        tz_offset: 8,
        peer_weight: 0.9,
        cities: &[city!("Manila", 14.60, 120.98, 1.0)],
    },
    Country {
        iso: "MY",
        name: "Malaysia",
        region: Region::OtherAsia,
        tz_offset: 8,
        peer_weight: 0.8,
        cities: &[city!("Kuala Lumpur", 3.139, 101.69, 1.0)],
    },
    Country {
        iso: "SG",
        name: "Singapore",
        region: Region::OtherAsia,
        tz_offset: 8,
        peer_weight: 0.5,
        cities: &[city!("Singapore", 1.35, 103.82, 1.0)],
    },
    Country {
        iso: "PK",
        name: "Pakistan",
        region: Region::OtherAsia,
        tz_offset: 5,
        peer_weight: 0.6,
        cities: &[
            city!("Karachi", 24.86, 67.01, 1.0),
            city!("Lahore", 31.55, 74.34, 0.8),
        ],
    },
    Country {
        iso: "BD",
        name: "Bangladesh",
        region: Region::OtherAsia,
        tz_offset: 6,
        peer_weight: 0.4,
        cities: &[city!("Dhaka", 23.81, 90.41, 1.0)],
    },
    Country {
        iso: "SA",
        name: "Saudi Arabia",
        region: Region::OtherAsia,
        tz_offset: 3,
        peer_weight: 0.7,
        cities: &[
            city!("Riyadh", 24.71, 46.68, 1.0),
            city!("Jeddah", 21.49, 39.19, 0.7),
        ],
    },
    Country {
        iso: "AE",
        name: "United Arab Emirates",
        region: Region::OtherAsia,
        tz_offset: 4,
        peer_weight: 0.5,
        cities: &[city!("Dubai", 25.20, 55.27, 1.0)],
    },
    Country {
        iso: "IL",
        name: "Israel",
        region: Region::OtherAsia,
        tz_offset: 2,
        peer_weight: 0.6,
        cities: &[city!("Tel Aviv", 32.09, 34.78, 1.0)],
    },
    // ---- Africa.
    Country {
        iso: "EG",
        name: "Egypt",
        region: Region::Africa,
        tz_offset: 2,
        peer_weight: 0.9,
        cities: &[
            city!("Cairo", 30.04, 31.24, 1.4),
            city!("Alexandria", 31.20, 29.92, 0.6),
        ],
    },
    Country {
        iso: "ZA",
        name: "South Africa",
        region: Region::Africa,
        tz_offset: 2,
        peer_weight: 0.8,
        cities: &[
            city!("Johannesburg", -26.20, 28.05, 1.2),
            city!("Cape Town", -33.92, 18.42, 0.8),
        ],
    },
    Country {
        iso: "NG",
        name: "Nigeria",
        region: Region::Africa,
        tz_offset: 1,
        peer_weight: 0.6,
        cities: &[city!("Lagos", 6.52, 3.38, 1.0)],
    },
    Country {
        iso: "MA",
        name: "Morocco",
        region: Region::Africa,
        tz_offset: 0,
        peer_weight: 0.5,
        cities: &[city!("Casablanca", 33.57, -7.59, 1.0)],
    },
    Country {
        iso: "KE",
        name: "Kenya",
        region: Region::Africa,
        tz_offset: 3,
        peer_weight: 0.3,
        cities: &[city!("Nairobi", -1.29, 36.82, 1.0)],
    },
    Country {
        iso: "DZ",
        name: "Algeria",
        region: Region::Africa,
        tz_offset: 1,
        peer_weight: 0.4,
        cities: &[city!("Algiers", 36.75, 3.06, 1.0)],
    },
    // ---- Oceania.
    Country {
        iso: "AU",
        name: "Australia",
        region: Region::Oceania,
        tz_offset: 10,
        peer_weight: 1.8,
        cities: &[
            city!("Sydney", -33.87, 151.21, 1.4),
            city!("Melbourne", -37.81, 144.96, 1.2),
            city!("Brisbane", -27.47, 153.03, 0.7),
            city!("Perth", -31.95, 115.86, 0.5),
        ],
    },
    Country {
        iso: "NZ",
        name: "New Zealand",
        region: Region::Oceania,
        tz_offset: 12,
        peer_weight: 0.4,
        cities: &[
            city!("Auckland", -36.85, 174.76, 1.0),
            city!("Wellington", -41.29, 174.78, 0.5),
        ],
    },
];

/// Refine a US city into the Table-2 east/west split (the paper separates
/// "US East" and "US West"; we split at −100° longitude).
pub fn us_city_region(city: &City) -> Region {
    if city.lon > -100.0 {
        Region::UsEast
    } else {
        Region::UsWest
    }
}

/// The Table-2 region of a (country, city) pair.
pub fn region_of(country: &Country, city: &City) -> Region {
    if country.iso == "US" {
        us_city_region(city)
    } else {
        country.region
    }
}

/// Continent buckets used in §4.2's "bubble plot" summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Continent {
    /// North America (US, CA, MX).
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
}

/// Continent of a country (coarse, by ISO code).
pub fn continent_of(iso: &str) -> Continent {
    match iso {
        "US" | "CA" | "MX" => Continent::NorthAmerica,
        "BR" | "AR" | "CL" | "CO" | "PE" => Continent::SouthAmerica,
        "IN" | "CN" | "JP" | "KR" | "TW" | "ID" | "TH" | "VN" | "PH" | "MY" | "SG" | "PK"
        | "BD" | "SA" | "AE" | "IL" => Continent::Asia,
        "EG" | "ZA" | "NG" | "MA" | "KE" | "DZ" => Continent::Africa,
        "AU" | "NZ" => Continent::Oceania,
        _ => Continent::Europe,
    }
}

/// Look up a country by ISO code.
pub fn country_by_iso(iso: &str) -> Option<&'static Country> {
    WORLD_COUNTRIES.iter().find(|c| c.iso == iso)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn gazetteer_is_well_formed() {
        assert!(WORLD_COUNTRIES.len() >= 45, "need a rich gazetteer");
        let mut seen = std::collections::HashSet::new();
        for c in WORLD_COUNTRIES {
            assert!(seen.insert(c.iso), "duplicate iso {}", c.iso);
            assert!(!c.cities.is_empty(), "{} has no cities", c.iso);
            assert!(c.peer_weight > 0.0);
            assert!((-12..=13).contains(&c.tz_offset), "{} tz", c.iso);
            for city in c.cities {
                assert!((-90.0..=90.0).contains(&city.lat), "{} lat", city.name);
                assert!((-180.0..=180.0).contains(&city.lon), "{} lon", city.name);
                assert!(city.weight > 0.0);
            }
        }
    }

    /// §4.2: North America ~27 %, Europe ~35 %. Our calibration must land
    /// within a few points of the paper.
    #[test]
    fn continental_shares_match_the_paper() {
        let total: f64 = WORLD_COUNTRIES.iter().map(|c| c.peer_weight).sum();
        let mut shares: HashMap<Continent, f64> = HashMap::new();
        for c in WORLD_COUNTRIES {
            *shares.entry(continent_of(c.iso)).or_default() += c.peer_weight / total;
        }
        let na = shares[&Continent::NorthAmerica];
        let eu = shares[&Continent::Europe];
        assert!((0.23..0.31).contains(&na), "North America share {na}");
        assert!((0.31..0.39).contains(&eu), "Europe share {eu}");
        // Sizable groups in South America and Asia (§4.2).
        assert!(shares[&Continent::SouthAmerica] > 0.04);
        assert!(shares[&Continent::Asia] > 0.12);
    }

    #[test]
    fn us_split_is_sensible() {
        let us = country_by_iso("US").unwrap();
        let east = us
            .cities
            .iter()
            .filter(|c| us_city_region(c) == Region::UsEast)
            .count();
        let west = us.cities.len() - east;
        assert!(east >= 5 && west >= 3, "east {east} west {west}");
        // Spot checks.
        let ny = us.cities.iter().find(|c| c.name == "New York").unwrap();
        let la = us.cities.iter().find(|c| c.name == "Los Angeles").unwrap();
        assert_eq!(us_city_region(ny), Region::UsEast);
        assert_eq!(us_city_region(la), Region::UsWest);
    }

    #[test]
    fn region_of_non_us_is_country_region() {
        let de = country_by_iso("DE").unwrap();
        assert_eq!(region_of(de, &de.cities[0]), Region::Europe);
        let cn = country_by_iso("CN").unwrap();
        assert_eq!(region_of(cn, &cn.cities[0]), Region::China);
    }

    #[test]
    fn every_region_is_populated() {
        let mut counts = [0usize; 9];
        for c in WORLD_COUNTRIES {
            for city in c.cities {
                counts[region_of(c, city).index()] += 1;
            }
        }
        for (i, n) in counts.iter().enumerate() {
            assert!(*n > 0, "region {:?} empty", Region::ALL[i]);
        }
    }

    #[test]
    fn region_labels_match_table2() {
        assert_eq!(Region::UsEast.label(), "US East");
        assert_eq!(Region::OtherAsia.label(), "Other Asia");
        assert_eq!(Region::ALL.len(), 9);
    }
}
