//! Secondary-GUID chains, rollback, and cloning.
//!
//! §6.2 describes the instrumentation the NetSession team added to detect
//! shared GUIDs: "a random 160-bit 'secondary GUID', which is chosen freshly
//! every time the software starts … and to report the last five secondary
//! GUIDs to the control plane upon login." A normal installation reports
//! overlapping sequences (5 4 3 2 1, 6 5 4 3 2, …); rollbacks, restored
//! backups, re-imaged café machines, and master-image cloning produce
//! *branching* histories — 0.6 % of observed graphs.
//!
//! [`InstallationState`] is the client-side chain; [`AnomalyKind`] plus
//! [`AnomalyPlan`] decide which installations misbehave and how, calibrated
//! to the paper's pattern mix (46.2 % one long + one single-vertex branch,
//! 6.2 % two long branches, 23.5 % several short/medium branches, the rest
//! irregular).

use netsession_core::id::SecondaryGuid;
use netsession_core::rng::DetRng;

/// How many secondary GUIDs a login report carries (§6.2: "the last five").
pub const REPORT_LEN: usize = 5;

/// The client-side secondary-GUID history of one installation state.
#[derive(Clone, Debug, Default)]
pub struct InstallationState {
    history: Vec<SecondaryGuid>,
}

impl InstallationState {
    /// Fresh installation with an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// The software starts: draw a new secondary GUID and return the login
    /// report (last five, newest first).
    pub fn start(&mut self, rng: &mut DetRng) -> Vec<SecondaryGuid> {
        self.history.push(SecondaryGuid::random(rng));
        self.report()
    }

    /// The report a login would carry right now (newest first).
    pub fn report(&self) -> Vec<SecondaryGuid> {
        self.history
            .iter()
            .rev()
            .take(REPORT_LEN)
            .copied()
            .collect()
    }

    /// Number of starts so far.
    pub fn starts(&self) -> usize {
        self.history.len()
    }

    /// Roll the installation state back by `n` starts (failed software
    /// update restored from the pre-update state).
    pub fn rollback(&mut self, n: usize) {
        let keep = self.history.len().saturating_sub(n);
        self.history.truncate(keep);
    }

    /// Capture a snapshot (disk image / backup).
    pub fn snapshot(&self) -> InstallationState {
        self.clone()
    }

    /// Restore from a snapshot, discarding the current state.
    pub fn restore(&mut self, snapshot: &InstallationState) {
        self.history = snapshot.history.clone();
    }
}

/// The §6.2 anomaly classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Normal installation: a pure linear chain.
    None,
    /// One failed software update rolled back after a single start —
    /// produces one long branch plus a single-vertex short branch (the most
    /// common nonlinear pattern, 46.2 %).
    RollbackOnce,
    /// A backup restored mid-month; both lines then evolve — two long
    /// branches (6.2 %).
    BackupRestore,
    /// An Internet-café machine re-imaged nightly, or workstations cloned
    /// from a master image — several short or medium branches (23.5 %).
    ReImage,
    /// Something stranger (multiple interacting restores) — the paper's
    /// unexplained "highly irregular patterns".
    Irregular,
}

/// Assigns anomaly kinds across a population of GUIDs so that the overall
/// nonlinear fraction and the pattern mix match §6.2.
#[derive(Clone, Debug)]
pub struct AnomalyPlan {
    /// Fraction of GUID graphs that end up nonlinear (paper: 0.006).
    pub nonlinear_fraction: f64,
    /// Mix over nonlinear kinds: (rollback, backup, reimage, irregular);
    /// paper: 46.2 %, 6.2 %, 23.5 %, 24.1 %.
    pub mix: [f64; 4],
}

impl Default for AnomalyPlan {
    fn default() -> Self {
        AnomalyPlan {
            nonlinear_fraction: 0.006,
            mix: [0.462, 0.062, 0.235, 0.241],
        }
    }
}

impl AnomalyPlan {
    /// Draw the anomaly kind for one GUID.
    pub fn sample(&self, rng: &mut DetRng) -> AnomalyKind {
        if !rng.chance(self.nonlinear_fraction) {
            return AnomalyKind::None;
        }
        match rng.weighted_index(&self.mix) {
            0 => AnomalyKind::RollbackOnce,
            1 => AnomalyKind::BackupRestore,
            2 => AnomalyKind::ReImage,
            _ => AnomalyKind::Irregular,
        }
    }
}

/// Generate the full month of login reports for one GUID with the given
/// anomaly kind and roughly `starts` software starts. Returns one report
/// per login, in order. This is what the simulation's login pipeline feeds
/// to the control plane; the analytics reconstruct the chain graphs from
/// exactly these reports.
pub fn generate_reports(
    kind: AnomalyKind,
    starts: usize,
    rng: &mut DetRng,
) -> Vec<Vec<SecondaryGuid>> {
    let starts = starts.max(3);
    let mut reports = Vec::with_capacity(starts + 4);
    let mut state = InstallationState::new();
    match kind {
        AnomalyKind::None => {
            for _ in 0..starts {
                reports.push(state.start(rng));
            }
        }
        AnomalyKind::RollbackOnce => {
            let fail_at = 1 + rng.index(starts - 1);
            for i in 0..starts {
                reports.push(state.start(rng));
                if i == fail_at {
                    // The update failed; the installer restored the
                    // pre-update state, losing the most recent start.
                    state.rollback(1);
                }
            }
        }
        AnomalyKind::BackupRestore => {
            let snap_at = 1 + rng.index(starts / 2);
            let restore_at = snap_at + 1 + rng.index(starts - snap_at - 1);
            let mut snapshot = None;
            for i in 0..starts {
                reports.push(state.start(rng));
                if i == snap_at {
                    snapshot = Some(state.snapshot());
                }
                if i == restore_at {
                    state.restore(snapshot.as_ref().unwrap());
                }
            }
            // The restored line keeps evolving a while.
            for _ in 0..(3 + rng.index(4)) {
                reports.push(state.start(rng));
            }
        }
        AnomalyKind::ReImage => {
            // A master image taken early; several machines (or nightly
            // resets) each boot from it and run a short while.
            for _ in 0..(2 + rng.index(2)) {
                reports.push(state.start(rng));
            }
            let image = state.snapshot();
            let branches = 3 + rng.index(4);
            for _ in 0..branches {
                let mut machine = image.snapshot();
                for _ in 0..(1 + rng.index(3)) {
                    reports.push(machine.start(rng));
                }
            }
        }
        AnomalyKind::Irregular => {
            // Nested snapshots and restores at random — the unexplained
            // residue class.
            let mut snaps: Vec<InstallationState> = Vec::new();
            for _ in 0..(starts + 4) {
                reports.push(state.start(rng));
                if rng.chance(0.3) {
                    snaps.push(state.snapshot());
                }
                if !snaps.is_empty() && rng.chance(0.35) {
                    let s = snaps[rng.index(snaps.len())].clone();
                    state.restore(&s);
                }
            }
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_chain_reports_overlap() {
        let mut rng = DetRng::seeded(51);
        let reports = generate_reports(AnomalyKind::None, 8, &mut rng);
        assert_eq!(reports.len(), 8);
        // Report i+1 shifted by one must overlap report i in 4 positions.
        for w in reports.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let overlap = b[1..].to_vec();
            let expected: Vec<_> = a.iter().take(overlap.len()).copied().collect();
            assert_eq!(overlap, expected, "consecutive reports must overlap");
        }
    }

    #[test]
    fn report_is_newest_first_and_capped_at_five() {
        let mut rng = DetRng::seeded(52);
        let mut st = InstallationState::new();
        let mut last = None;
        for i in 1..=9 {
            let rep = st.start(&mut rng);
            assert_eq!(rep.len(), i.min(REPORT_LEN));
            if let Some(prev) = last {
                assert_ne!(rep[0], prev, "fresh secondary GUID each start");
            }
            last = Some(rep[0]);
        }
    }

    #[test]
    fn rollback_reuses_earlier_prefix() {
        let mut rng = DetRng::seeded(53);
        let mut st = InstallationState::new();
        st.start(&mut rng);
        st.start(&mut rng);
        let before = st.report();
        st.start(&mut rng); // the failed-update start
        st.rollback(1);
        assert_eq!(st.report(), before, "rollback restores the prior state");
        let after = st.start(&mut rng);
        // The new start's parent equals the pre-update head: a fork.
        assert_eq!(after[1], before[0]);
    }

    #[test]
    fn anomaly_plan_mix_is_calibrated() {
        let plan = AnomalyPlan::default();
        let mut rng = DetRng::seeded(54);
        let n = 400_000;
        let mut nonlinear = 0usize;
        let mut rollback = 0usize;
        for _ in 0..n {
            match plan.sample(&mut rng) {
                AnomalyKind::None => {}
                AnomalyKind::RollbackOnce => {
                    nonlinear += 1;
                    rollback += 1;
                }
                _ => nonlinear += 1,
            }
        }
        let frac = nonlinear as f64 / n as f64;
        assert!((0.004..0.008).contains(&frac), "nonlinear fraction {frac}");
        let roll_share = rollback as f64 / nonlinear as f64;
        assert!(
            (0.40..0.53).contains(&roll_share),
            "rollback share {roll_share}"
        );
    }

    #[test]
    fn reimage_produces_shared_prefix_branches() {
        let mut rng = DetRng::seeded(55);
        let reports = generate_reports(AnomalyKind::ReImage, 6, &mut rng);
        // Count distinct "first" GUIDs following the image point: multiple
        // branches must re-report the image head as their parent.
        let mut heads = std::collections::HashMap::new();
        for r in &reports {
            if r.len() >= 2 {
                *heads.entry(r[1]).or_insert(0usize) += 1;
            }
        }
        let max_children = heads.values().max().copied().unwrap_or(0);
        assert!(
            max_children >= 2,
            "re-image must branch (max children {max_children})"
        );
    }

    #[test]
    fn generate_reports_minimum_three_starts() {
        let mut rng = DetRng::seeded(56);
        let r = generate_reports(AnomalyKind::None, 0, &mut rng);
        assert!(r.len() >= 3);
    }
}
