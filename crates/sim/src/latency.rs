//! Connection-setup latency model.
//!
//! The macro experiments need plausible latencies for three things: the
//! TCP + protocol handshake to an edge server, the STUN round trip, and
//! peer-to-peer connection establishment (including hole-punch attempts,
//! which take several round trips). A full path-level model is
//! unnecessary; distance-derived propagation plus a locality discount
//! captures what the measurements depend on.

use netsession_core::rng::DetRng;
use netsession_core::time::SimDuration;

/// Great-circle distance between two (lat, lon) points in kilometres.
/// Used both here and by the mobility analysis (§6.2 computes "the two
/// geolocations that were farthest apart" per GUID).
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const R: f64 = 6371.0;
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * R * a.sqrt().atan2((1.0 - a).sqrt())
}

/// Simple latency model: base access delay + distance propagation + jitter.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Fixed per-connection overhead (access network, OS, queuing), seconds.
    pub base_s: f64,
    /// Propagation: seconds per kilometre of great-circle distance. Light
    /// in fibre plus routing inflation is roughly 1 ms per 100 km one-way.
    pub per_km_s: f64,
    /// Extra RTT multiplier for same-AS paths (usually < 1: short paths).
    pub same_as_factor: f64,
    /// Multiplicative jitter half-width (0.2 = ±20 %).
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_s: 0.015,
            per_km_s: 0.00001,
            same_as_factor: 0.5,
            jitter: 0.2,
        }
    }
}

impl LatencyModel {
    /// One-way latency between two geolocated endpoints.
    pub fn one_way(
        &self,
        from: (f64, f64),
        to: (f64, f64),
        same_as: bool,
        rng: &mut DetRng,
    ) -> SimDuration {
        let km = haversine_km(from.0, from.1, to.0, to.1);
        let mut s = self.base_s + km * self.per_km_s;
        if same_as {
            s *= self.same_as_factor;
        }
        let j = 1.0 + rng.range_f64(-self.jitter, self.jitter);
        SimDuration::from_secs_f64(s * j.max(0.05))
    }

    /// Round-trip latency.
    pub fn rtt(
        &self,
        from: (f64, f64),
        to: (f64, f64),
        same_as: bool,
        rng: &mut DetRng,
    ) -> SimDuration {
        let one = self.one_way(from, to, same_as, rng);
        let two = self.one_way(from, to, same_as, rng);
        one + two
    }

    /// Time to establish a peer connection: TCP handshake plus protocol
    /// handshake (~2 RTT), or several more round trips when a NAT hole punch
    /// is involved.
    pub fn connect_time(
        &self,
        from: (f64, f64),
        to: (f64, f64),
        same_as: bool,
        needs_punch: bool,
        rng: &mut DetRng,
    ) -> SimDuration {
        let rtts = if needs_punch { 6.0 } else { 2.0 };
        self.rtt(from, to, same_as, rng).mul_f64(rtts / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        // Philadelphia → Barcelona is about 6,450 km.
        let d = haversine_km(39.95, -75.16, 41.39, 2.17);
        assert!((6100.0..6800.0).contains(&d), "got {d}");
        // Zero distance.
        assert!(haversine_km(10.0, 20.0, 10.0, 20.0) < 1e-9);
        // Antipodal points are half the circumference (~20,015 km).
        let anti = haversine_km(0.0, 0.0, 0.0, 180.0);
        assert!((19900.0..20100.0).contains(&anti), "got {anti}");
    }

    #[test]
    fn latency_grows_with_distance() {
        let m = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let mut rng = DetRng::seeded(1);
        let near = m.one_way((40.0, -75.0), (40.1, -75.1), false, &mut rng);
        let far = m.one_way((40.0, -75.0), (41.4, 2.2), false, &mut rng);
        assert!(far > near);
        assert!(near.as_secs_f64() >= m.base_s);
    }

    #[test]
    fn same_as_paths_are_faster() {
        let m = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let mut rng = DetRng::seeded(2);
        let a = m.one_way((40.0, -75.0), (40.5, -75.5), false, &mut rng);
        let b = m.one_way((40.0, -75.0), (40.5, -75.5), true, &mut rng);
        assert!(b < a);
    }

    #[test]
    fn hole_punch_costs_more_round_trips() {
        let m = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let mut rng = DetRng::seeded(3);
        let plain = m.connect_time((0.0, 0.0), (1.0, 1.0), false, false, &mut rng);
        let punched = m.connect_time((0.0, 0.0), (1.0, 1.0), false, true, &mut rng);
        assert!(punched.as_secs_f64() > plain.as_secs_f64() * 2.0);
    }

    #[test]
    fn jitter_is_bounded() {
        let m = LatencyModel::default();
        let mut rng = DetRng::seeded(4);
        let base = LatencyModel {
            jitter: 0.0,
            ..m.clone()
        };
        let mut rng2 = DetRng::seeded(5);
        let nominal = base
            .one_way((40.0, -75.0), (41.0, -76.0), false, &mut rng2)
            .as_secs_f64();
        for _ in 0..200 {
            let v = m
                .one_way((40.0, -75.0), (41.0, -76.0), false, &mut rng)
                .as_secs_f64();
            assert!(
                v > nominal * 0.7 && v < nominal * 1.3,
                "v={v} nominal={nominal}"
            );
        }
    }
}
