//! Discrete-event kernel.
//!
//! A minimal, deterministic event queue: events are `(SimTime, sequence, E)`
//! triples ordered by time with FIFO tie-breaking on the insertion sequence
//! number, so two events scheduled for the same instant always fire in the
//! order they were scheduled — a property the reproducibility of every
//! experiment depends on.
//!
//! The queue intentionally has no callback machinery: the simulation driver
//! owns a `match` over its event enum, which keeps borrow-checking trivial
//! and the control flow visible in one place.

use netsession_core::time::SimTime;
use netsession_obs::{Counter, Gauge, MetricsRegistry};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
///
/// The queue carries passive instrumentation: `sim.events_scheduled`,
/// `sim.events_processed`, and the `sim.queue_depth` gauge. The instruments
/// start detached (recording goes nowhere); [`EventQueue::with_metrics`]
/// attaches them to a registry. Either way the queue's behaviour — and
/// therefore every simulated experiment — is identical.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    scheduled_ctr: Counter,
    processed_ctr: Counter,
    depth_gauge: Gauge,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            scheduled_ctr: Counter::detached(),
            processed_ctr: Counter::detached(),
            depth_gauge: Gauge::detached(),
        }
    }

    /// Attach the kernel's instruments to `registry`.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.scheduled_ctr = registry.counter("sim.events_scheduled");
        self.processed_ctr = registry.counter("sim.events_processed");
        self.depth_gauge = registry.gauge("sim.queue_depth");
        self
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is always a
    /// driver bug, and silently reordering would destroy determinism.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.scheduled_ctr.incr();
        self.depth_gauge.set(self.heap.len() as i64);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        self.processed_ctr.incr();
        self.depth_gauge.set(self.heap.len() as i64);
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_breaking_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.schedule(SimTime(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(10));
        q.pop();
        assert_eq!(q.now(), SimTime(25));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime(25), "clock stays at last event");
    }

    #[test]
    fn can_schedule_at_current_instant_during_processing() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        let (t, _) = q.pop().unwrap();
        q.schedule(t, 2); // same-instant follow-up event is fine
        let (t2, e2) = q.pop().unwrap();
        assert_eq!((t2, e2), (SimTime(10), 2));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn counters_and_peek() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        q.schedule(SimTime::ZERO + SimDuration::from_secs(2), ());
        assert_eq!(q.pending(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(1_000_000)));
        q.pop();
        assert_eq!(q.processed(), 1);
        assert_eq!(q.pending(), 1);
    }
}
