//! Discrete-event kernel.
//!
//! A minimal, deterministic event queue: events are `(SimTime, sequence, E)`
//! triples ordered by time with FIFO tie-breaking on the insertion sequence
//! number, so two events scheduled for the same instant always fire in the
//! order they were scheduled — a property the reproducibility of every
//! experiment depends on.
//!
//! The ordering contract lives here; the *storage* lives behind the
//! [`EventSched`] trait in [`crate::queue`]. The default backend is a
//! hierarchical [`TimingWheel`] (O(1) schedule, amortized O(levels) pop);
//! [`OracleEventQueue`] runs on the original [`BinaryHeapSched`] and is kept
//! as the bit-identical oracle for property tests and A/B benchmarks.
//!
//! The queue intentionally has no callback machinery: the simulation driver
//! owns a `match` over its event enum, which keeps borrow-checking trivial
//! and the control flow visible in one place.

use crate::queue::{BinaryHeapSched, EventSched, TimingWheel};
use netsession_core::time::SimTime;
use netsession_obs::{Counter, Gauge, MetricsRegistry};
use std::marker::PhantomData;

/// Deterministic future-event list.
///
/// Generic over its storage backend `S` (default: the timing wheel). Every
/// backend must honour the `(at, seq)` pop order, so the choice of `S`
/// affects speed only — never the event stream.
///
/// The queue carries passive instrumentation: `sim.events_scheduled`,
/// `sim.events_processed`, and the `sim.queue_depth` gauge. The instruments
/// start detached (recording goes nowhere); [`EventQueue::with_metrics`]
/// attaches them to a registry. Either way the queue's behaviour — and
/// therefore every simulated experiment — is identical.
pub struct EventQueue<E, S: EventSched<E> = TimingWheel<E>> {
    sched: S,
    now: SimTime,
    seq: u64,
    processed: u64,
    scheduled_ctr: Counter,
    processed_ctr: Counter,
    depth_gauge: Gauge,
    _event: PhantomData<E>,
}

/// The event queue on its original binary-heap backend — the correctness
/// oracle the timing wheel is property-tested against.
pub type OracleEventQueue<E> = EventQueue<E, BinaryHeapSched<E>>;

impl<E, S: EventSched<E> + Default> Default for EventQueue<E, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, S: EventSched<E> + Default> EventQueue<E, S> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            sched: S::default(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            scheduled_ctr: Counter::detached(),
            processed_ctr: Counter::detached(),
            depth_gauge: Gauge::detached(),
            _event: PhantomData,
        }
    }
}

impl<E, S: EventSched<E>> EventQueue<E, S> {
    /// Attach the kernel's instruments to `registry`.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.scheduled_ctr = registry.counter("sim.events_scheduled");
        self.processed_ctr = registry.counter("sim.events_processed");
        self.depth_gauge = registry.gauge("sim.queue_depth");
        self
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.sched.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is always a
    /// driver bug, and silently reordering would destroy determinism.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.sched.push(at, seq, event);
        self.scheduled_ctr.incr();
        self.depth_gauge.set(self.sched.len() as i64);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _seq, event) = self.sched.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.processed += 1;
        self.processed_ctr.incr();
        self.depth_gauge.set(self.sched.len() as i64);
        Some((at, event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.sched.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_core::time::SimDuration;

    // The kernel tests run on both backends: the oracle heap and the
    // default timing wheel must be indistinguishable through this API.
    fn on_both(test: impl Fn(&mut dyn FnMut() -> EventQueueDyn)) {
        test(&mut || EventQueueDyn::Heap(OracleEventQueue::new()));
        test(&mut || EventQueueDyn::Wheel(EventQueue::new()));
    }

    enum EventQueueDyn {
        Heap(OracleEventQueue<i64>),
        Wheel(EventQueue<i64>),
    }

    impl EventQueueDyn {
        fn schedule(&mut self, at: SimTime, e: i64) {
            match self {
                EventQueueDyn::Heap(q) => q.schedule(at, e),
                EventQueueDyn::Wheel(q) => q.schedule(at, e),
            }
        }
        fn pop(&mut self) -> Option<(SimTime, i64)> {
            match self {
                EventQueueDyn::Heap(q) => q.pop(),
                EventQueueDyn::Wheel(q) => q.pop(),
            }
        }
        fn now(&self) -> SimTime {
            match self {
                EventQueueDyn::Heap(q) => q.now(),
                EventQueueDyn::Wheel(q) => q.now(),
            }
        }
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mk| {
            let mut q = mk();
            q.schedule(SimTime(30), 3);
            q.schedule(SimTime(10), 1);
            q.schedule(SimTime(20), 2);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn fifo_tie_breaking_at_same_instant() {
        on_both(|mk| {
            let mut q = mk();
            for i in 0..100 {
                q.schedule(SimTime(5), i);
            }
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_with_pops() {
        on_both(|mk| {
            let mut q = mk();
            q.schedule(SimTime(10), 0);
            q.schedule(SimTime(25), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime(10));
            q.pop();
            assert_eq!(q.now(), SimTime(25));
            assert!(q.pop().is_none());
            assert_eq!(q.now(), SimTime(25), "clock stays at last event");
        });
    }

    #[test]
    fn can_schedule_at_current_instant_during_processing() {
        on_both(|mk| {
            let mut q = mk();
            q.schedule(SimTime(10), 1);
            let (t, _) = q.pop().unwrap();
            q.schedule(t, 2); // same-instant follow-up event is fine
            let (t2, e2) = q.pop().unwrap();
            assert_eq!((t2, e2), (SimTime(10), 2));
        });
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn counters_and_peek() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        q.schedule(SimTime::ZERO + SimDuration::from_secs(2), ());
        assert_eq!(q.pending(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(1_000_000)));
        q.pop();
        assert_eq!(q.processed(), 1);
        assert_eq!(q.pending(), 1);
    }
}
