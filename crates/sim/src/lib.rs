//! # netsession-sim
//!
//! Deterministic discrete-event simulation substrate for the NetSession
//! reproduction.
//!
//! The paper measures a production system with 25.9 M installations; we have
//! no such deployment, so every macro-scale experiment runs on this
//! simulator instead (see DESIGN.md, substitution table). The crate has
//! three layers:
//!
//! * [`engine`] — a classic event-queue kernel: a simulated clock and a
//!   timestamped event list with deterministic FIFO tie-breaking. Storage is
//!   pluggable ([`queue`]): a hierarchical timing wheel by default, with the
//!   original binary heap kept as a property-tested oracle.
//! * [`flownet`] — a *fluid* (flow-level) network model: peers and servers
//!   are nodes with asymmetric access-link capacities, transfers are flows,
//!   and rates are assigned by progressive-filling **max-min fairness**,
//!   honouring per-flow rate ceilings (upload throttles). This is the
//!   standard abstraction for CDN-scale simulation, where packet-level
//!   detail is irrelevant but bandwidth sharing is everything.
//! * [`latency`] — a simple geographic + AS-locality latency model used for
//!   connection-setup delays and STUN round trips.

pub mod engine;
pub mod flownet;
pub mod latency;
pub mod queue;
pub mod shard;

pub use engine::{EventQueue, OracleEventQueue};
pub use flownet::{FlowId, FlowNet, NodeId};
pub use latency::LatencyModel;
pub use queue::{BinaryHeapSched, EventSched, TimingWheel};
pub use shard::{Outbox, ShardRunner, ShardStats, ShardWorker};
