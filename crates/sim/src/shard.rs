//! Deterministic sharded event-loop runner.
//!
//! Conservative parallel discrete-event simulation in the classic
//! Chandy–Misra style, specialized to the structure our workload actually
//! has: state is partitioned into shards (FlowNet union-find components, or
//! the Table-2 region key as the coarse fallback), each shard owns a private
//! [`EventQueue`], and virtual time advances in fixed *windows* of length
//! `W`. Within a window a shard processes only its own events; anything it
//! wants another shard to see is a **cross-shard message** with delivery
//! time at least one window away (lookahead ≥ `W`), exchanged at the
//! window barrier. That lookahead is what makes the parallel execution
//! conservative: when a shard processes window `[t, t+W)` it has already
//! received every message that could possibly land there.
//!
//! ## Determinism proof obligations
//!
//! The runner guarantees the *parallel* execution is bit-identical to the
//! *sequential oracle* (same program, shards stepped one at a time in index
//! order) provided the program upholds:
//!
//! 1. **Isolation** — a shard touches only its own state while handling an
//!    event. All sharing goes through [`Outbox::send`].
//! 2. **Lookahead** — cross-shard deliveries happen at or after the end of
//!    the window in which they were sent (enforced here by panic).
//! 3. **Self-determinism** — handling an event depends only on shard state,
//!    the event, and the virtual clock (no wall clock, no global RNG whose
//!    draw order spans shards — content-keyed RNG is the pattern).
//!
//! Under those, each shard's event stream is a pure function of the initial
//! state and its sorted inbox, and the barrier exchange sorts inboxes by
//! `(deliver_at, source shard, source order)` — a total order independent
//! of thread scheduling. The property tests in `tests/shard_determinism.rs`
//! replay randomized programs both ways and assert equality; the hybrid
//! crate's scaled runner layers record-stream digests on top.

use crate::engine::EventQueue;
use netsession_core::time::{SimDuration, SimTime};
use netsession_obs::profile::{ShardProfiler, WindowTiming};
use netsession_obs::MetricsRegistry;
use std::sync::mpsc;
use std::time::Instant;

/// Deterministic contiguous partition of the index space `0..total` into
/// `k` equal-population blocks: `starts[i] = total * i / k`.
///
/// This is the generalized shard key for programs whose state lives on a
/// contiguous index space (the scaled hybrid runner's peer indices): any
/// block count up to `total` works, blocks never interleave, and because
/// the cut points are a pure function of `(total, k)` the partition is
/// identical in the sequential oracle and the parallel run. Callers that
/// need semantic boundaries (e.g. region blocks) lay their index space out
/// contiguously first and let the cuts fall where they may — a block may
/// then span a *sub-range* of a semantic unit, which is exactly the
/// sub-region sharding scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    starts: Vec<u64>,
}

impl BlockPartition {
    /// Equal-population cuts of `0..total` into `k` blocks. Every block is
    /// non-empty.
    ///
    /// # Panics
    /// Panics when `k == 0` or `k > total` (an empty block would make the
    /// block → owner map ambiguous).
    pub fn equal(total: u64, k: usize) -> Self {
        assert!(k > 0, "at least one block");
        assert!(
            k as u64 <= total,
            "more blocks ({k}) than items ({total}): every block must be non-empty"
        );
        let starts = (0..=k as u64)
            .map(|i| ((total as u128 * i as u128) / k as u128) as u64)
            .collect();
        BlockPartition { starts }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Half-open index range of block `i`.
    pub fn block(&self, i: usize) -> std::ops::Range<u64> {
        self.starts[i]..self.starts[i + 1]
    }

    /// Owning block of index `x` (`x < total`), by binary search.
    pub fn of(&self, x: u64) -> usize {
        debug_assert!(x < *self.starts.last().expect("non-empty"));
        self.starts.partition_point(|&s| s <= x) - 1
    }

    /// The cut points, `blocks() + 1` of them: `starts[i]..starts[i+1]`
    /// is block `i`.
    pub fn bounds(&self) -> &[u64] {
        &self.starts
    }
}

/// One shard's logic: a state machine fed timestamped events.
///
/// `Send` because in parallel mode each worker is moved to its own thread
/// for the duration of the run.
pub trait ShardWorker: Send {
    /// The event type (local and cross-shard alike).
    type Event: Send;

    /// Handle one event. Schedule follow-ups (local or cross-shard) through
    /// `out`.
    fn handle(&mut self, at: SimTime, event: Self::Event, out: &mut Outbox<Self::Event>);
}

/// Where a handler's follow-up events go.
///
/// Local events land in the shard's own queue (any time ≥ `now`);
/// cross-shard sends are buffered to the window barrier and must respect
/// the lookahead contract.
pub struct Outbox<E> {
    shard: usize,
    n_shards: usize,
    now: SimTime,
    window_end: SimTime,
    local: Vec<(SimTime, E)>,
    cross: Vec<(usize, SimTime, E)>,
}

impl<E> Outbox<E> {
    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The current event's timestamp.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// End of the current window — the earliest admissible cross-shard
    /// delivery time.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// Schedule a local follow-up on this shard.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "local event scheduled into the past");
        self.local.push((at, event));
    }

    /// Send `event` to shard `dst`, delivered at `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the end of the current window: that would
    /// break the conservative lookahead and, with it, determinism. Senders
    /// should use `self.window_end().max(intended_time)` or model an
    /// explicit ≥ W propagation delay.
    pub fn send(&mut self, dst: usize, at: SimTime, event: E) {
        assert!(dst < self.n_shards, "cross-shard send to unknown shard");
        assert!(
            at >= self.window_end,
            "cross-shard send below lookahead: {at:?} < window end {:?}",
            self.window_end
        );
        if dst == self.shard {
            // A self-send still honours the barrier timing so shard count
            // never changes semantics.
            self.local.push((at, event));
        } else {
            self.cross.push((dst, at, event));
        }
    }
}

/// Per-shard progress counters, published under
/// `shard.<k>.{events,windows,cross_sent,cross_recv}` when a registry is
/// attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events handled by this shard.
    pub events: u64,
    /// Windows in which this shard had work.
    pub windows: u64,
    /// Cross-shard messages sent.
    pub cross_sent: u64,
    /// Cross-shard messages received.
    pub cross_recv: u64,
}

/// The sharded runner: owns the shards' queues and workers between windows
/// and coordinates the barrier exchange.
pub struct ShardRunner<W: ShardWorker> {
    workers: Vec<W>,
    queues: Vec<EventQueue<W::Event>>,
    window: SimDuration,
    stats: Vec<ShardStats>,
    /// Mail routed but not yet delivered: per destination shard, sorted at
    /// delivery by `(at, src, src_order)`.
    mailboxes: Vec<Vec<Mail<W::Event>>>,
    windows_run: u64,
    /// Counters already pushed into a registry by `publish_stats`, so a
    /// second publish adds only the delta (idempotent at quiescence).
    published: Vec<ShardStats>,
    published_windows: u64,
    /// Optional per-window profiler (deterministic execution channel +
    /// volatile wall-clock channel). `None` costs nothing on the hot path.
    profiler: Option<ShardProfiler>,
}

/// A worker panic caught at the window barrier: the original payload plus
/// the shard it came from, so the re-raise is deterministic and keeps the
/// first panic's message intact.
struct ShardPanic {
    shard: usize,
    payload: Box<dyn std::any::Any + Send + 'static>,
}

struct Mail<E> {
    at: SimTime,
    src: usize,
    /// Order within the sending shard's window — the tie-breaker that makes
    /// same-instant cross deliveries deterministic.
    src_order: u64,
    event: E,
}

/// What one shard reports back at a window barrier.
struct WindowResult<E> {
    shard: usize,
    cross: Vec<(usize, SimTime, E)>,
    events: u64,
    next: Option<SimTime>,
    /// Volatile: ns offsets from the run's start, 0 when not profiling.
    busy_start_ns: u64,
    busy_ns: u64,
}

impl<W: ShardWorker> ShardRunner<W> {
    /// Build a runner over `workers`, one shard each, with conservative
    /// window length `window` (must be nonzero).
    pub fn new(workers: Vec<W>, window: SimDuration) -> Self {
        assert!(window.as_micros() > 0, "window must be positive");
        let n = workers.len();
        assert!(n > 0, "at least one shard");
        ShardRunner {
            workers,
            queues: (0..n).map(|_| EventQueue::new()).collect(),
            window,
            stats: vec![ShardStats::default(); n],
            mailboxes: (0..n).map(|_| Vec::new()).collect(),
            windows_run: 0,
            published: vec![ShardStats::default(); n],
            published_windows: 0,
            profiler: None,
        }
    }

    /// Attach a per-window profiler. Both channels start recording at the
    /// next window; attach before running for full coverage.
    pub fn attach_profiler(&mut self, mut profiler: ShardProfiler) {
        profiler.begin_run(self.workers.len());
        self.profiler = Some(profiler);
    }

    /// Detach and return the profiler (to read its profile, fingerprint,
    /// and timings after a run).
    pub fn take_profiler(&mut self) -> Option<ShardProfiler> {
        self.profiler.take()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.workers.len()
    }

    /// Seed shard `k` with an initial event.
    pub fn seed(&mut self, shard: usize, at: SimTime, event: W::Event) {
        self.queues[shard].schedule(at, event);
    }

    /// Borrow a worker (e.g. to extract results after the run).
    pub fn worker(&self, shard: usize) -> &W {
        &self.workers[shard]
    }

    /// Consume the runner, returning the workers for result extraction.
    pub fn into_workers(self) -> Vec<W> {
        self.workers
    }

    /// Per-shard stats so far.
    pub fn stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Barrier count so far.
    pub fn windows_run(&self) -> u64 {
        self.windows_run
    }

    /// Publish the per-shard counters into `registry`.
    ///
    /// Idempotent via delta tracking: each call adds only what accrued
    /// since the last publish into the same counters, so a mid-run
    /// progress scrape followed by a final publish reads the same totals
    /// as a single publish at the end (rather than double-counting every
    /// `shard.*` metric).
    pub fn publish_stats(&mut self, registry: &MetricsRegistry) {
        for (k, (s, done)) in self.stats.iter().zip(self.published.iter_mut()).enumerate() {
            registry
                .counter(&format!("shard.{k}.events"))
                .add(s.events - done.events);
            registry
                .counter(&format!("shard.{k}.windows"))
                .add(s.windows - done.windows);
            registry
                .counter(&format!("shard.{k}.cross_sent"))
                .add(s.cross_sent - done.cross_sent);
            registry
                .counter(&format!("shard.{k}.cross_recv"))
                .add(s.cross_recv - done.cross_recv);
            *done = *s;
        }
        registry
            .counter("shard.windows_total")
            .add(self.windows_run - self.published_windows);
        self.published_windows = self.windows_run;
    }

    /// Earliest pending timestamp across queues and undelivered mail.
    fn next_time(&self) -> Option<SimTime> {
        let q = self.queues.iter().filter_map(|q| q.peek_time()).min();
        let m = self
            .mailboxes
            .iter()
            .flat_map(|mb| mb.iter().map(|m| m.at))
            .min();
        match (q, m) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Deliver each shard's due mail into its queue, in the canonical
    /// order. Mail beyond `window_end` stays buffered — delivering it now
    /// would be wrong only in ordering against mail not yet routed, so the
    /// conservative choice is to hold it.
    /// `recv`, when profiling, receives the per-shard count of messages
    /// delivered at this barrier.
    fn deliver_mail(&mut self, window_end: SimTime, mut recv: Option<&mut [u64]>) {
        for (k, mb) in self.mailboxes.iter_mut().enumerate() {
            if mb.is_empty() {
                continue;
            }
            let mut due: Vec<Mail<W::Event>> = Vec::new();
            let mut held: Vec<Mail<W::Event>> = Vec::new();
            for m in mb.drain(..) {
                if m.at < window_end {
                    due.push(m);
                } else {
                    held.push(m);
                }
            }
            *mb = held;
            if due.is_empty() {
                continue;
            }
            due.sort_by_key(|m| (m.at, m.src, m.src_order));
            self.stats[k].cross_recv += due.len() as u64;
            if let Some(recv) = recv.as_deref_mut() {
                recv[k] += due.len() as u64;
            }
            for m in due {
                self.queues[k].schedule(m.at, m.event);
            }
        }
    }

    /// Route one shard's outgoing cross mail into the mailboxes. `sent`,
    /// when profiling, receives the source shard's per-destination counts
    /// (a row of the window's mail matrix).
    fn route(
        &mut self,
        src: usize,
        cross: Vec<(usize, SimTime, W::Event)>,
        mut sent: Option<&mut [u64]>,
    ) {
        self.stats[src].cross_sent += cross.len() as u64;
        for (order, (dst, at, event)) in cross.into_iter().enumerate() {
            if let Some(sent) = sent.as_deref_mut() {
                sent[dst] += 1;
            }
            self.mailboxes[dst].push(Mail {
                at,
                src,
                src_order: order as u64,
                event,
            });
        }
    }

    /// Process one shard for the window ending at `window_end`.
    /// Pure per-shard work — this is the part that parallelizes.
    fn run_window_on(
        worker: &mut W,
        queue: &mut EventQueue<W::Event>,
        shard: usize,
        n_shards: usize,
        window_end: SimTime,
        clock: Option<Instant>,
    ) -> WindowResult<W::Event> {
        // `clock` is the run-start instant, present only when a profiler
        // is attached: the wall measurements feed the volatile channel and
        // nothing else, so the unprofiled hot path pays no clock reads.
        let busy_start_ns = clock.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        let mut out = Outbox {
            shard,
            n_shards,
            now: SimTime::ZERO,
            window_end,
            local: Vec::new(),
            cross: Vec::new(),
        };
        let mut events = 0u64;
        while queue.peek_time().is_some_and(|t| t < window_end) {
            let (at, ev) = queue.pop().expect("peeked");
            out.now = at;
            worker.handle(at, ev, &mut out);
            for (t, e) in out.local.drain(..) {
                queue.schedule(t, e);
            }
            events += 1;
        }
        let busy_ns = clock.map_or(0, |t0| {
            (t0.elapsed().as_nanos() as u64).saturating_sub(busy_start_ns)
        });
        WindowResult {
            shard,
            cross: std::mem::take(&mut out.cross),
            events,
            next: queue.peek_time(),
            busy_start_ns,
            busy_ns,
        }
    }

    /// Run to quiescence, stepping shards **sequentially** in index order —
    /// the oracle execution the parallel mode is property-tested against.
    pub fn run_sequential(&mut self) {
        self.run_inner(false)
    }

    /// Run to quiescence with one thread per shard inside each window.
    /// Bit-identical to [`ShardRunner::run_sequential`] when the program
    /// upholds the module-level obligations.
    ///
    /// A panicking worker is re-raised here with its **original payload**
    /// (the barrier catches it, joins the remaining shards, then resumes
    /// the unwind) — not swallowed behind channel-teardown noise. When
    /// several shards panic in one window, the lowest shard index wins,
    /// matching what the sequential oracle would surface first.
    pub fn run_parallel(&mut self) {
        self.run_inner(true)
    }

    fn run_inner(&mut self, parallel: bool) {
        let n = self.workers.len();
        let profiling = self.profiler.is_some();
        // Run-start reference for the volatile channel; absent when not
        // profiling so the hot path reads no clocks.
        let clock = profiling.then(Instant::now);
        // Per-window profiling scratch, reused across windows. The
        // deterministic vectors cover *every* shard each barrier (idle
        // shards record zeros) so the record stream's shape is a pure
        // function of the program, not of which shards happened to run.
        let scratch = if profiling { n } else { 0 };
        let mut events_w = vec![0u64; scratch];
        let mut depth_w = vec![0u64; scratch];
        let mut recv_w = vec![0u64; scratch];
        let mut sent_w = vec![0u64; scratch * scratch];
        let mut busy_start_w = vec![0u64; scratch];
        let mut busy_w = vec![0u64; scratch];
        let mut wait_w = vec![0u64; scratch];

        while let Some(next) = self.next_time() {
            // Align windows to a fixed global grid so the barrier schedule —
            // and with it every lookahead check — is independent of which
            // shard happens to act first.
            let w = self.window.as_micros();
            let window_start = SimTime(next.as_micros() / w * w);
            let window_end = window_start + self.window;
            if profiling {
                events_w.fill(0);
                recv_w.fill(0);
                sent_w.fill(0);
                busy_start_w.fill(0);
                busy_w.fill(0);
                wait_w.fill(0);
            }
            let elapsed = |c: Option<Instant>| c.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
            let t_window = elapsed(clock);
            self.deliver_mail(window_end, profiling.then_some(recv_w.as_mut_slice()));
            let mut merge_ns = elapsed(clock).saturating_sub(t_window);
            self.windows_run += 1;

            let results: Vec<WindowResult<W::Event>> = if parallel && n > 1 {
                let (tx, rx) = mpsc::channel();
                std::thread::scope(|s| {
                    for (k, (worker, queue)) in self
                        .workers
                        .iter_mut()
                        .zip(self.queues.iter_mut())
                        .enumerate()
                    {
                        // Idle shards skip the spawn entirely.
                        if queue.peek_time().is_none_or(|t| t >= window_end) {
                            continue;
                        }
                        let tx = tx.clone();
                        s.spawn(move || {
                            // Catch a panicking worker so its payload rides
                            // the barrier channel instead of being replaced
                            // by scope-join "a scoped thread panicked"
                            // noise; the barrier re-raises it below.
                            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                Self::run_window_on(worker, queue, k, n, window_end, clock)
                            }))
                            .map_err(|payload| ShardPanic { shard: k, payload });
                            tx.send(r).expect("barrier receiver alive");
                        });
                    }
                    drop(tx);
                    let mut rs: Vec<WindowResult<W::Event>> = Vec::new();
                    let mut panics: Vec<ShardPanic> = Vec::new();
                    for r in rx.iter() {
                        match r {
                            Ok(r) => rs.push(r),
                            Err(p) => panics.push(p),
                        }
                    }
                    if !panics.is_empty() {
                        // Every shard has finished (the channel closed), so
                        // re-raising is safe. With several panicked shards
                        // the surfaced one is chosen deterministically: the
                        // lowest shard index — the one the sequential
                        // oracle would have hit first.
                        panics.sort_by_key(|p| p.shard);
                        std::panic::resume_unwind(panics.remove(0).payload);
                    }
                    // Arrival order is scheduler-dependent; the canonical
                    // order is by shard index.
                    rs.sort_by_key(|r| r.shard);
                    rs
                })
            } else {
                let mut rs = Vec::new();
                for k in 0..n {
                    if self.queues[k].peek_time().is_none_or(|t| t >= window_end) {
                        continue;
                    }
                    let r = Self::run_window_on(
                        &mut self.workers[k],
                        &mut self.queues[k],
                        k,
                        n,
                        window_end,
                        clock,
                    );
                    rs.push(r);
                }
                rs
            };

            // Barrier close: in parallel mode a shard's wait is the gap
            // between its own finish and the last finisher (sequential
            // shards never wait).
            let barrier_ns = elapsed(clock);
            let route0 = barrier_ns;
            for r in results {
                let k = r.shard;
                self.stats[k].events += r.events;
                self.stats[k].windows += 1;
                let _ = r.next;
                if profiling {
                    events_w[k] = r.events;
                    busy_start_w[k] = r.busy_start_ns;
                    busy_w[k] = r.busy_ns;
                    if parallel && n > 1 {
                        wait_w[k] = barrier_ns.saturating_sub(r.busy_start_ns + r.busy_ns);
                    }
                }
                self.route(
                    k,
                    r.cross,
                    profiling.then(|| &mut sent_w[k * n..(k + 1) * n]),
                );
            }
            merge_ns += elapsed(clock).saturating_sub(route0);

            if profiling {
                for (k, d) in depth_w.iter_mut().enumerate() {
                    *d = self.queues[k].pending() as u64;
                }
                let p = self.profiler.as_mut().expect("profiling");
                p.record_window(
                    window_start.as_micros(),
                    &events_w,
                    &depth_w,
                    &recv_w,
                    &sent_w,
                );
                p.record_window_timing(WindowTiming {
                    start_ns: t_window,
                    busy_start_ns: busy_start_w.clone(),
                    busy_ns: busy_w.clone(),
                    wait_ns: wait_w.clone(),
                    merge_ns,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A worker that counts token hops and forwards tokens round-robin.
    struct TokenWorker {
        hops: u64,
        log: Vec<(u64, u32)>,
    }

    impl ShardWorker for TokenWorker {
        type Event = u32;

        fn handle(&mut self, at: SimTime, token: u32, out: &mut Outbox<u32>) {
            self.hops += 1;
            self.log.push((at.as_micros(), token));
            if token > 0 {
                let dst = (out.shard() + 1) % out.n_shards();
                let deliver = out.window_end().max(at + SimDuration::from_secs(1));
                out.send(dst, deliver, token - 1);
            }
        }
    }

    fn token_run(parallel: bool) -> Vec<Vec<(u64, u32)>> {
        let workers = (0..4)
            .map(|_| TokenWorker {
                hops: 0,
                log: Vec::new(),
            })
            .collect();
        let mut r = ShardRunner::new(workers, SimDuration::from_secs(10));
        r.seed(0, SimTime(0), 12);
        r.seed(2, SimTime(5_000_000), 7);
        if parallel {
            r.run_parallel();
        } else {
            r.run_sequential();
        }
        r.into_workers().into_iter().map(|w| w.log).collect()
    }

    #[test]
    fn token_ring_parallel_matches_sequential() {
        assert_eq!(token_run(false), token_run(true));
    }

    #[test]
    fn lookahead_violation_panics() {
        let r = std::panic::catch_unwind(|| {
            struct Bad;
            impl ShardWorker for Bad {
                type Event = ();
                fn handle(&mut self, at: SimTime, _e: (), out: &mut Outbox<()>) {
                    out.send(1, at, ()); // below window end
                }
            }
            let mut r = ShardRunner::new(vec![Bad, Bad], SimDuration::from_secs(10));
            r.seed(0, SimTime(0), ());
            r.run_sequential();
        });
        assert!(r.is_err(), "sub-lookahead send must panic");
    }

    /// The first worker panic must surface with its original message —
    /// not the generic "a scoped thread panicked" / send-failure noise —
    /// and deterministically (lowest panicking shard wins).
    #[test]
    fn worker_panic_message_propagates_through_barrier() {
        struct Exploder;
        impl ShardWorker for Exploder {
            type Event = u32;
            fn handle(&mut self, _at: SimTime, token: u32, out: &mut Outbox<u32>) {
                if out.shard() >= 1 {
                    panic!("shard {} exploded on token {token}", out.shard());
                }
            }
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut r = ShardRunner::new(
                vec![Exploder, Exploder, Exploder],
                SimDuration::from_secs(10),
            );
            // All three shards are busy in the same window; shards 1 and 2
            // both panic, shard 0 completes normally.
            r.seed(0, SimTime(0), 10);
            r.seed(1, SimTime(0), 21);
            r.seed(2, SimTime(0), 32);
            r.run_parallel();
        }))
        .expect_err("a panicking worker must fail the run");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert_eq!(
            msg, "shard 1 exploded on token 21",
            "original (lowest-shard) panic payload must survive the barrier"
        );
    }

    #[test]
    fn block_partition_covers_contiguously_and_inverts() {
        for (total, k) in [(9u64, 1usize), (9, 9), (100, 7), (25_900_000, 32), (5, 5)] {
            let p = BlockPartition::equal(total, k);
            assert_eq!(p.blocks(), k);
            assert_eq!(p.bounds().len(), k + 1);
            let mut covered = 0u64;
            for i in 0..k {
                let b = p.block(i);
                assert_eq!(b.start, covered, "blocks must tile without gaps");
                assert!(!b.is_empty(), "block {i}/{k} of {total} empty");
                covered = b.end;
                // Membership inverts at both edges of every block.
                assert_eq!(p.of(b.start), i);
                assert_eq!(p.of(b.end - 1), i);
            }
            assert_eq!(covered, total);
        }
    }

    #[test]
    fn block_partition_rejects_more_blocks_than_items() {
        let r = std::panic::catch_unwind(|| BlockPartition::equal(3, 4));
        assert!(r.is_err(), "4 blocks over 3 items must panic");
    }

    #[test]
    fn publish_stats_twice_does_not_double_count() {
        let workers = (0..2)
            .map(|_| TokenWorker {
                hops: 0,
                log: Vec::new(),
            })
            .collect();
        let mut r = ShardRunner::new(workers, SimDuration::from_secs(10));
        r.seed(0, SimTime(0), 5);
        r.run_sequential();
        let reg = MetricsRegistry::new();
        // A progress scrape followed by a final publish must read the same
        // totals as a single publish — the delta on the second call is 0.
        r.publish_stats(&reg);
        let once = reg.counter("shard.0.events").get();
        r.publish_stats(&reg);
        assert_eq!(reg.counter("shard.0.events").get(), once);
        assert_eq!(once, r.stats()[0].events);
        assert_eq!(reg.counter("shard.windows_total").get(), r.windows_run());
        // New work after a publish shows up exactly once.
        r.seed(0, SimTime(1_000_000_000), 3);
        r.run_sequential();
        r.publish_stats(&reg);
        r.publish_stats(&reg);
        assert_eq!(reg.counter("shard.0.events").get(), r.stats()[0].events);
        assert_eq!(reg.counter("shard.windows_total").get(), r.windows_run());
    }

    /// The deterministic profiler channel is identical between the
    /// sequential oracle and the threaded run, and agrees with the
    /// runner's own lifetime stats; timings stay on the volatile side.
    #[test]
    fn profiler_execution_channel_matches_across_modes() {
        let profiled = |parallel: bool| {
            let workers = (0..4)
                .map(|_| TokenWorker {
                    hops: 0,
                    log: Vec::new(),
                })
                .collect();
            let mut r = ShardRunner::new(workers, SimDuration::from_secs(10));
            r.seed(0, SimTime(0), 12);
            r.seed(2, SimTime(5_000_000), 7);
            r.attach_profiler(ShardProfiler::new());
            if parallel {
                r.run_parallel();
            } else {
                r.run_sequential();
            }
            let p = r.take_profiler().expect("attached");
            let stats: Vec<_> = r.stats().to_vec();
            (p, stats)
        };
        let (seq, seq_stats) = profiled(false);
        let (par, _) = profiled(true);
        assert_eq!(seq.exec(), par.exec(), "deterministic channel diverged");
        let s = seq.exec().stats();
        assert_eq!(s.shards, 4);
        assert_eq!(
            s.events,
            seq_stats.iter().map(|st| st.events).sum::<u64>(),
            "profiler events must equal runner stats"
        );
        assert_eq!(
            s.per_shard.iter().map(|sh| sh.mail_sent).sum::<u64>(),
            seq_stats.iter().map(|st| st.cross_sent).sum::<u64>()
        );
        assert_eq!(
            s.per_shard.iter().map(|sh| sh.mail_recv).sum::<u64>(),
            seq_stats.iter().map(|st| st.cross_recv).sum::<u64>()
        );
        assert!(s.crit_events >= s.events / 4 && s.crit_events <= s.events);
        // Volatile channel: one timing per barrier, never part of the
        // deterministic comparison above.
        assert_eq!(seq.timings().windows().len(), s.windows as usize);
        assert_eq!(par.timings().windows().len(), s.windows as usize);
    }

    #[test]
    fn stats_track_events_and_mail() {
        let workers = (0..2)
            .map(|_| TokenWorker {
                hops: 0,
                log: Vec::new(),
            })
            .collect();
        let mut r = ShardRunner::new(workers, SimDuration::from_secs(10));
        r.seed(0, SimTime(0), 3);
        r.run_sequential();
        let total_events: u64 = r.stats().iter().map(|s| s.events).sum();
        assert_eq!(total_events, 4, "3 hops + final zero token");
        let sent: u64 = r.stats().iter().map(|s| s.cross_sent).sum();
        let recv: u64 = r.stats().iter().map(|s| s.cross_recv).sum();
        assert_eq!(sent, 3);
        assert_eq!(sent, recv);
    }
}
