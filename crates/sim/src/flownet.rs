//! Flow-level network model with max-min fair bandwidth sharing.
//!
//! Nodes model access links with asymmetric capacity (residential broadband
//! has fast downstream and slow upstream — the asymmetry the paper invokes
//! to explain Fig 4). A transfer is a *flow* from a source node's upstream
//! side to a destination node's downstream side, optionally capped by a
//! per-flow rate ceiling (NetSession's deliberate upload throttling, §3.9).
//!
//! Rates are assigned by **progressive filling**: all flows grow at the same
//! rate until a resource (a node side or a flow ceiling) saturates, the
//! affected flows freeze, and filling continues — the textbook max-min fair
//! allocation. The driver calls [`FlowNet::recompute`] whenever the flow set
//! changes and reads back per-flow rates.

use netsession_core::units::Bandwidth;
use netsession_obs::{Counter, Histogram, MetricsRegistry};
use std::collections::BTreeMap;

/// Handle to a node (an access link: one upstream + one downstream side).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Handle to a flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Rates above this are treated as unconstrained (1 TB/s).
const MAX_RATE: f64 = 1e12;
/// Relative tolerance for saturation checks.
const EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct Node {
    up: f64,
    down: f64,
}

#[derive(Clone, Debug)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    ceil: f64,
    rate: f64,
}

/// The fluid network: nodes, flows, and their current max-min fair rates.
pub struct FlowNet {
    nodes: Vec<Node>,
    flows: BTreeMap<u64, Flow>,
    next_flow: u64,
    recompute_ctr: Counter,
    flows_per_recompute: Histogram,
}

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNet {
    /// Empty network.
    pub fn new() -> Self {
        FlowNet {
            nodes: Vec::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            recompute_ctr: Counter::detached(),
            flows_per_recompute: Histogram::detached(),
        }
    }

    /// Attach the model's instruments (`sim.flownet_recomputes` and the
    /// `sim.flownet_flows_per_recompute` histogram) to `registry`. Purely
    /// passive: rate assignment is identical with or without a registry.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.recompute_ctr = registry.counter("sim.flownet_recomputes");
        self.flows_per_recompute = registry.histogram("sim.flownet_flows_per_recompute");
        self
    }

    /// Add a node with the given up/downstream capacities. Infinite
    /// capacities are allowed (edge servers are modeled as amply
    /// provisioned).
    pub fn add_node(&mut self, up: Bandwidth, down: Bandwidth) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            up: up.bytes_per_sec(),
            down: down.bytes_per_sec(),
        });
        id
    }

    /// Add an *uncapacitated* node (infinite both ways) — for server tiers.
    pub fn add_infinite_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            up: f64::INFINITY,
            down: f64::INFINITY,
        });
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Change a node's capacities (e.g. the user's link becomes busy and the
    /// upload throttle tightens). Takes effect at the next [`recompute`].
    ///
    /// [`recompute`]: FlowNet::recompute
    pub fn set_node_caps(&mut self, node: NodeId, up: Bandwidth, down: Bandwidth) {
        let n = &mut self.nodes[node.0 as usize];
        n.up = up.bytes_per_sec();
        n.down = down.bytes_per_sec();
    }

    /// Start a flow from `src`'s upstream to `dst`'s downstream, with an
    /// optional rate ceiling.
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, ceil: Option<Bandwidth>) -> FlowId {
        assert!((src.0 as usize) < self.nodes.len(), "bad src node");
        assert!((dst.0 as usize) < self.nodes.len(), "bad dst node");
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id.0,
            Flow {
                src,
                dst,
                ceil: ceil.map_or(MAX_RATE, |b| b.bytes_per_sec().min(MAX_RATE)),
                rate: 0.0,
            },
        );
        id
    }

    /// Tighten or relax a flow's ceiling.
    pub fn set_flow_ceil(&mut self, flow: FlowId, ceil: Option<Bandwidth>) {
        if let Some(f) = self.flows.get_mut(&flow.0) {
            f.ceil = ceil.map_or(MAX_RATE, |b| b.bytes_per_sec().min(MAX_RATE));
        }
    }

    /// End a flow. Unknown IDs are ignored (idempotent teardown).
    pub fn remove_flow(&mut self, flow: FlowId) {
        self.flows.remove(&flow.0);
    }

    /// Current rate of a flow (zero for unknown IDs).
    pub fn rate(&self, flow: FlowId) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.flows.get(&flow.0).map_or(0.0, |f| f.rate))
    }

    /// Endpoints of a flow.
    pub fn endpoints(&self, flow: FlowId) -> Option<(NodeId, NodeId)> {
        self.flows.get(&flow.0).map(|f| (f.src, f.dst))
    }

    /// Recompute all flow rates by progressive filling (max-min fairness).
    /// Call after any membership or capacity change; rates are stable
    /// between calls.
    ///
    /// The loop works on dense scratch arrays and an active-flow list that
    /// shrinks as flows freeze, so the common case is far below the
    /// theoretical O(F²) bound.
    pub fn recompute(&mut self) {
        self.recompute_ctr.incr();
        self.flows_per_recompute.record(self.flows.len() as u64);
        let n_nodes = self.nodes.len();
        let mut resid_up: Vec<f64> = self.nodes.iter().map(|n| n.up).collect();
        let mut resid_down: Vec<f64> = self.nodes.iter().map(|n| n.down).collect();
        let mut up_count = vec![0u32; n_nodes];
        let mut down_count = vec![0u32; n_nodes];

        // Dense snapshot in insertion order (determinism).
        let ids: Vec<u64> = self.flows.keys().copied().collect();
        let n = ids.len();
        let mut src = Vec::with_capacity(n);
        let mut dst = Vec::with_capacity(n);
        let mut ceil = Vec::with_capacity(n);
        let mut rate = vec![0.0f64; n];
        for id in &ids {
            let f = &self.flows[id];
            src.push(f.src.0 as usize);
            dst.push(f.dst.0 as usize);
            ceil.push(f.ceil);
            up_count[f.src.0 as usize] += 1;
            down_count[f.dst.0 as usize] += 1;
        }

        // Only nodes actually touched by flows matter for the bottleneck
        // scan.
        let mut touched: Vec<usize> = src.iter().chain(dst.iter()).copied().collect();
        touched.sort_unstable();
        touched.dedup();

        let mut active: Vec<usize> = (0..n).collect();
        while !active.is_empty() {
            // The uniform increment every unfrozen flow can still take.
            let mut inc = f64::INFINITY;
            for &i in &touched {
                if up_count[i] > 0 {
                    inc = inc.min(resid_up[i] / up_count[i] as f64);
                }
                if down_count[i] > 0 {
                    inc = inc.min(resid_down[i] / down_count[i] as f64);
                }
            }
            for &k in &active {
                inc = inc.min(ceil[k] - rate[k]);
            }
            if !inc.is_finite() {
                inc = MAX_RATE;
            }
            inc = inc.max(0.0);

            // Apply the increment.
            for &k in &active {
                rate[k] += inc;
                resid_up[src[k]] -= inc;
                resid_down[dst[k]] -= inc;
            }

            // Freeze flows at a saturated resource or at their ceiling.
            // Infinite-capacity sides (edge servers) can never saturate —
            // without the finiteness guard, `inf - inc <= EPS * inf` is
            // true and every edge flow would freeze at the first global
            // increment.
            let before = active.len();
            active.retain(|&k| {
                let up_cap = self.nodes[src[k]].up;
                let down_cap = self.nodes[dst[k]].down;
                let up_sat = up_cap.is_finite()
                    && (resid_up[src[k]] <= EPS * up_cap || resid_up[src[k]] <= 1e-6);
                let down_sat = down_cap.is_finite()
                    && (resid_down[dst[k]] <= EPS * down_cap || resid_down[dst[k]] <= 1e-6);
                let at_ceil = rate[k] >= ceil[k] - EPS * ceil[k].max(1.0);
                let capped = rate[k] >= MAX_RATE;
                let freeze = up_sat || down_sat || at_ceil || capped;
                if freeze {
                    up_count[src[k]] -= 1;
                    down_count[dst[k]] -= 1;
                }
                !freeze
            });
            // Progress guarantee: if numerically nothing froze, freeze the
            // first remaining flow to avoid an infinite loop.
            if active.len() == before {
                let k = active.remove(0);
                up_count[src[k]] -= 1;
                down_count[dst[k]] -= 1;
            }
        }

        for (k, id) in ids.iter().enumerate() {
            self.flows.get_mut(id).unwrap().rate = rate[k];
        }
    }

    /// Sum of current flow rates into `node` (its downstream utilization).
    pub fn downstream_utilization(&self, node: NodeId) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.flows
                .values()
                .filter(|f| f.dst == node)
                .map(|f| f.rate)
                .sum(),
        )
    }

    /// Sum of current flow rates out of `node` (its upstream utilization).
    pub fn upstream_utilization(&self, node: NodeId) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.flows
                .values()
                .filter(|f| f.src == node)
                .map(|f| f.rate)
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(v: f64) -> Bandwidth {
        Bandwidth::from_mbps(v)
    }

    fn assert_close(a: Bandwidth, mbps_expected: f64) {
        assert!(
            (a.as_mbps() - mbps_expected).abs() < 0.01,
            "expected {mbps_expected} Mbps, got {}",
            a.as_mbps()
        );
    }

    #[test]
    fn single_flow_limited_by_slowest_side() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(1.0), mbps(20.0));
        let b = net.add_node(mbps(5.0), mbps(50.0));
        let f = net.add_flow(a, b, None);
        net.recompute();
        assert_close(net.rate(f), 1.0); // a's upstream is the bottleneck
    }

    #[test]
    fn flow_ceiling_binds() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(10.0), mbps(10.0));
        let b = net.add_node(mbps(10.0), mbps(10.0));
        let f = net.add_flow(a, b, Some(mbps(2.0)));
        net.recompute();
        assert_close(net.rate(f), 2.0);
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(8.0), mbps(100.0));
        let d1 = net.add_node(mbps(1.0), mbps(100.0));
        let d2 = net.add_node(mbps(1.0), mbps(100.0));
        let f1 = net.add_flow(src, d1, None);
        let f2 = net.add_flow(src, d2, None);
        net.recompute();
        assert_close(net.rate(f1), 4.0);
        assert_close(net.rate(f2), 4.0);
    }

    #[test]
    fn max_min_redistributes_slack_from_capped_flow() {
        // Source has 10 Mbps up; flow 1 is capped at 2, so flow 2 should
        // get the remaining 8 — strict equal-split would give it only 5.
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(10.0), mbps(100.0));
        let d1 = net.add_node(mbps(100.0), mbps(100.0));
        let d2 = net.add_node(mbps(100.0), mbps(100.0));
        let f1 = net.add_flow(src, d1, Some(mbps(2.0)));
        let f2 = net.add_flow(src, d2, None);
        net.recompute();
        assert_close(net.rate(f1), 2.0);
        assert_close(net.rate(f2), 8.0);
    }

    #[test]
    fn downstream_bottleneck_shared_across_sources() {
        // Two seeders with ample upstream feed one downloader with 6 Mbps
        // downstream: each flow gets 3.
        let mut net = FlowNet::new();
        let s1 = net.add_node(mbps(50.0), mbps(50.0));
        let s2 = net.add_node(mbps(50.0), mbps(50.0));
        let d = net.add_node(mbps(50.0), mbps(6.0));
        let f1 = net.add_flow(s1, d, None);
        let f2 = net.add_flow(s2, d, None);
        net.recompute();
        assert_close(net.rate(f1), 3.0);
        assert_close(net.rate(f2), 3.0);
    }

    #[test]
    fn asymmetric_links_mirror_broadband() {
        // Downloader has 16/1 ADSL-ish link; a single peer upload to it is
        // limited by the *peer's* 1 Mbps upstream even though the
        // downloader could take 16.
        let mut net = FlowNet::new();
        let peer = net.add_node(mbps(1.0), mbps(16.0));
        let dl = net.add_node(mbps(1.0), mbps(16.0));
        let f = net.add_flow(peer, dl, None);
        net.recompute();
        assert_close(net.rate(f), 1.0);
    }

    #[test]
    fn infinite_edge_server_fills_client_downlink() {
        let mut net = FlowNet::new();
        let edge = net.add_infinite_node();
        let dl = net.add_node(mbps(1.0), mbps(16.0));
        let f = net.add_flow(edge, dl, None);
        net.recompute();
        assert_close(net.rate(f), 16.0);
    }

    #[test]
    fn flow_removal_restores_capacity() {
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(4.0), mbps(100.0));
        let d1 = net.add_node(mbps(100.0), mbps(100.0));
        let d2 = net.add_node(mbps(100.0), mbps(100.0));
        let f1 = net.add_flow(src, d1, None);
        let f2 = net.add_flow(src, d2, None);
        net.recompute();
        assert_close(net.rate(f1), 2.0);
        net.remove_flow(f2);
        net.recompute();
        assert_close(net.rate(f1), 4.0);
        assert_eq!(net.rate(f2), Bandwidth::ZERO);
    }

    #[test]
    fn capacity_change_takes_effect() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(10.0), mbps(10.0));
        let b = net.add_node(mbps(10.0), mbps(10.0));
        let f = net.add_flow(a, b, None);
        net.recompute();
        assert_close(net.rate(f), 10.0);
        net.set_node_caps(a, mbps(0.5), mbps(10.0));
        net.recompute();
        assert_close(net.rate(f), 0.5);
    }

    #[test]
    fn utilization_sums() {
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(10.0), mbps(10.0));
        let d = net.add_node(mbps(10.0), mbps(3.0));
        net.add_flow(src, d, None);
        net.add_flow(src, d, None);
        net.recompute();
        assert_close(net.downstream_utilization(d), 3.0);
        assert_close(net.upstream_utilization(src), 3.0);
    }

    #[test]
    fn no_flows_recompute_is_noop() {
        let mut net = FlowNet::new();
        net.add_node(mbps(1.0), mbps(1.0));
        net.recompute(); // must not panic or loop
        assert_eq!(net.flow_count(), 0);
    }

    /// The defining max-min property: every flow is either at its ceiling or
    /// passes through at least one saturated resource, and no resource is
    /// over capacity.
    #[test]
    fn max_min_invariants_on_random_networks() {
        use netsession_core::rng::DetRng;
        let mut rng = DetRng::seeded(99);
        for round in 0..30 {
            let mut net = FlowNet::new();
            let n = 3 + rng.index(8);
            let nodes: Vec<NodeId> = (0..n)
                .map(|_| {
                    net.add_node(
                        mbps(rng.range_f64(0.5, 20.0)),
                        mbps(rng.range_f64(2.0, 100.0)),
                    )
                })
                .collect();
            let f = 1 + rng.index(20);
            let flows: Vec<FlowId> = (0..f)
                .map(|_| {
                    let s = nodes[rng.index(n)];
                    let mut d = nodes[rng.index(n)];
                    while d == s {
                        d = nodes[rng.index(n)];
                    }
                    let ceil = if rng.chance(0.3) {
                        Some(mbps(rng.range_f64(0.1, 5.0)))
                    } else {
                        None
                    };
                    net.add_flow(s, d, ceil)
                })
                .collect();
            net.recompute();

            // Capacity feasibility.
            for (i, node) in nodes.iter().enumerate() {
                let up = net.upstream_utilization(*node).bytes_per_sec();
                let down = net.downstream_utilization(*node).bytes_per_sec();
                let cap_up = net.nodes[i].up;
                let cap_down = net.nodes[i].down;
                assert!(
                    up <= cap_up * (1.0 + 1e-6) + 1e-3,
                    "round {round}: up overload"
                );
                assert!(
                    down <= cap_down * (1.0 + 1e-6) + 1e-3,
                    "round {round}: down overload"
                );
            }
            // Bottleneck property.
            for fid in &flows {
                let flow = &net.flows[&fid.0];
                let at_ceil = flow.rate >= flow.ceil * (1.0 - 1e-6);
                let src_up = net.upstream_utilization(flow.src).bytes_per_sec();
                let dst_down = net.downstream_utilization(flow.dst).bytes_per_sec();
                let src_sat = src_up >= net.nodes[flow.src.0 as usize].up * (1.0 - 1e-6) - 1e-3;
                let dst_sat = dst_down >= net.nodes[flow.dst.0 as usize].down * (1.0 - 1e-6) - 1e-3;
                assert!(
                    at_ceil || src_sat || dst_sat,
                    "round {round}: flow {fid:?} is not bottlenecked anywhere (rate {})",
                    flow.rate
                );
            }
        }
    }
}
