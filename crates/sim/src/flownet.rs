//! Flow-level network model with max-min fair bandwidth sharing.
//!
//! Nodes model access links with asymmetric capacity (residential broadband
//! has fast downstream and slow upstream — the asymmetry the paper invokes
//! to explain Fig 4). A transfer is a *flow* from a source node's upstream
//! side to a destination node's downstream side, optionally capped by a
//! per-flow rate ceiling (NetSession's deliberate upload throttling, §3.9).
//!
//! Rates are assigned by **progressive filling**: all flows grow at the same
//! rate until a resource (a node side or a flow ceiling) saturates, the
//! affected flows freeze, and filling continues — the textbook max-min fair
//! allocation.
//!
//! # Incremental recomputation
//!
//! Rates only couple flows that share a resource, i.e. flows in the same
//! *connected component* of the bipartite flow graph. The model therefore
//! maintains a union-find partition of nodes, tracks which components were
//! dirtied by membership / ceiling / capacity changes, and
//! [`FlowNet::recompute_dirty`] re-runs progressive filling only inside
//! dirty components — the common driver path at scale, where a single
//! swarm's churn must not trigger a global recomputation.
//! [`FlowNet::recompute`] remains as the full-recomputation fallback and as
//! the oracle for equivalence tests; both paths fill each *exact* connected
//! component independently (flows visited in creation order), so they
//! assign byte-identical rates.
//!
//! Flows live in a dense slab (`Vec` + free list) addressed by
//! generation-tagged [`FlowId`]s, and per-node utilization aggregates are
//! maintained alongside rates, so [`FlowNet::downstream_utilization`] /
//! [`FlowNet::upstream_utilization`] are O(1) reads rather than O(flows)
//! scans.

use netsession_core::units::Bandwidth;
use netsession_obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceCtx, TraceSink};

/// Handle to a node (an access link: one upstream + one downstream side).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Handle to a flow: a slab slot plus a generation tag. Slots are reused
/// after removal, but the generation bumps on every removal, so a stale
/// handle can never alias a later flow occupying the same slot — lookups
/// through it simply miss (rate zero, idempotent teardown).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FlowId {
    slot: u32,
    gen: u32,
}

/// Rates above this are treated as unconstrained (1 TB/s).
const MAX_RATE: f64 = 1e12;
/// Relative tolerance for saturation checks.
const EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct Node {
    up: f64,
    down: f64,
}

#[derive(Clone, Debug)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    ceil: f64,
    rate: f64,
    /// Monotonic creation stamp. Progressive filling always visits flows
    /// in `seq` order, which keeps rate assignment (and its floating-point
    /// rounding) independent of slot reuse.
    seq: u64,
}

#[derive(Clone, Debug, Default)]
struct Slot {
    gen: u32,
    flow: Option<Flow>,
}

/// Scratch buffers for [`FlowNet::fill_candidates`], reused across
/// recomputes. Recomputation runs on nearly every simulation event, so
/// per-call `Vec` churn here would dominate the allocator profile.
#[derive(Default)]
struct CandScratch {
    lsrc: Vec<u32>,
    ldst: Vec<u32>,
    lparent: Vec<u32>,
    lrank: Vec<u8>,
    comp_of_root: Vec<u32>,
    comps: Vec<Vec<u32>>,
}

/// Scratch buffers for [`FlowNet::fill_component`], reused across fills.
#[derive(Default)]
struct FillScratch {
    cn: Vec<u32>,
    cap_up: Vec<f64>,
    cap_down: Vec<f64>,
    resid_up: Vec<f64>,
    resid_down: Vec<f64>,
    up_count: Vec<u32>,
    down_count: Vec<u32>,
    src: Vec<usize>,
    dst: Vec<usize>,
    ceil: Vec<f64>,
    rate: Vec<f64>,
    active: Vec<usize>,
    live_nodes: Vec<u32>,
    up_thr: Vec<f64>,
    down_thr: Vec<f64>,
    rate_thr: Vec<f64>,
}

/// The fluid network: nodes, flows, and their current max-min fair rates.
pub struct FlowNet {
    nodes: Vec<Node>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,

    // Coarse union-find partition of nodes over the active flow graph.
    // Additions union eagerly; removals only mark staleness (the partition
    // is then an over-approximation of true connectivity, which is always
    // safe — it can only enlarge the recomputed set). `rebuild_partition`
    // restores exactness once enough removals accumulate.
    parent: Vec<u32>,
    rank: Vec<u8>,
    // Epoch-stamped laziness: a node whose stamp is stale is implicitly its
    // own singleton root, so resetting the whole partition is a counter
    // bump plus re-unioning the live flows — O(live), not O(nodes).
    uf_stamp: Vec<u64>,
    uf_epoch: u64,
    stale_removals: usize,

    // Dirty tracking: nodes touched by mutations since the last recompute,
    // deduplicated with an epoch-stamped mark.
    dirty_nodes: Vec<u32>,
    dirty_mark: Vec<u64>,
    epoch: u64,

    // Scratch epoch arrays (per-node) reused across recomputes to avoid
    // O(nodes) clearing: dirty-root marks, distinct-root counting marks,
    // and the node→local-index map used by component filling.
    root_mark: Vec<u64>,
    comp_mark: Vec<u64>,
    scan_epoch: u64,
    nl_idx: Vec<u32>,
    nl_mark: Vec<u64>,
    nl_epoch: u64,

    // Running per-node utilization aggregates (sum of flow rates touching
    // each side). Exact after every recompute; between a removal and the
    // next recompute they track by subtraction, like the rates themselves.
    util_up: Vec<f64>,
    util_down: Vec<f64>,

    // Recompute-path scratch, reused call to call (alloc-free steady
    // state). Taken out of `self` with `mem::take` for the duration of a
    // call, so borrows of `self` stay simple.
    members_scratch: Vec<(u64, u32)>,
    slots_scratch: Vec<u32>,
    cand: CandScratch,
    fill: FillScratch,

    // Dense list of live slots (order arbitrary; members are re-sorted by
    // creation stamp wherever order matters) so per-event scans touch only
    // live flows, not the whole slab. `slot_pos` is the inverse index.
    live_slots: Vec<u32>,
    slot_pos: Vec<u32>,

    recompute_ctr: Counter,
    flows_per_recompute: Histogram,
    components_gauge: Gauge,
    dirty_components_ctr: Counter,
    flows_recomputed_ctr: Counter,

    // Trace scope: while a driver is mutating flows on behalf of a traced
    // download, attach/detach marker spans are emitted under that
    // download's context. Detached by default (zero-cost null check).
    trace: TraceSink,
    trace_ctx: TraceCtx,
    trace_now_us: u64,
}

impl Default for FlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNet {
    /// Empty network.
    pub fn new() -> Self {
        FlowNet {
            nodes: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            parent: Vec::new(),
            rank: Vec::new(),
            uf_stamp: Vec::new(),
            uf_epoch: 1,
            stale_removals: 0,
            dirty_nodes: Vec::new(),
            dirty_mark: Vec::new(),
            epoch: 1,
            root_mark: Vec::new(),
            comp_mark: Vec::new(),
            scan_epoch: 0,
            nl_idx: Vec::new(),
            nl_mark: Vec::new(),
            nl_epoch: 0,
            util_up: Vec::new(),
            util_down: Vec::new(),
            members_scratch: Vec::new(),
            slots_scratch: Vec::new(),
            cand: CandScratch::default(),
            fill: FillScratch::default(),
            live_slots: Vec::new(),
            slot_pos: Vec::new(),
            recompute_ctr: Counter::detached(),
            flows_per_recompute: Histogram::detached(),
            components_gauge: Gauge::detached(),
            dirty_components_ctr: Counter::detached(),
            flows_recomputed_ctr: Counter::detached(),
            trace: TraceSink::detached(),
            trace_ctx: TraceCtx::NONE,
            trace_now_us: 0,
        }
    }

    /// Attach the model's instruments to `registry`: the existing
    /// `sim.flownet_recomputes` counter and `sim.flownet_flows_per_recompute`
    /// histogram, plus the incremental-path instruments
    /// `sim.flownet_components` (flow-graph components at the last
    /// recompute), `sim.flownet_dirty_components` (components re-filled),
    /// and `sim.flownet_active_flows_recomputed` (flows re-filled). Purely
    /// passive: rate assignment is identical with or without a registry.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.recompute_ctr = registry.counter("sim.flownet_recomputes");
        self.flows_per_recompute = registry.histogram("sim.flownet_flows_per_recompute");
        self.components_gauge = registry.gauge("sim.flownet_components");
        self.dirty_components_ctr = registry.counter("sim.flownet_dirty_components");
        self.flows_recomputed_ctr = registry.counter("sim.flownet_active_flows_recomputed");
        self
    }

    /// Attach a trace sink. Flow attach/detach then emit marker spans
    /// whenever a trace scope is set (see [`FlowNet::set_trace_scope`]).
    /// Passive like the metrics: rate assignment never depends on it.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = sink.clone();
        self
    }

    /// Enter a trace scope: until [`FlowNet::clear_trace_scope`], flow
    /// mutations emit `flow_attach`/`flow_detach` spans under `ctx` at
    /// virtual time `now_us`. Drivers set this around the mutations they
    /// perform on behalf of one traced download.
    pub fn set_trace_scope(&mut self, ctx: TraceCtx, now_us: u64) {
        self.trace_ctx = ctx;
        self.trace_now_us = now_us;
    }

    /// Leave the trace scope (mutations stop emitting spans).
    pub fn clear_trace_scope(&mut self) {
        self.trace_ctx = TraceCtx::NONE;
    }

    fn push_node(&mut self, up: f64, down: f64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { up, down });
        self.parent.push(id.0);
        self.rank.push(0);
        self.uf_stamp.push(0);
        self.dirty_mark.push(0);
        self.root_mark.push(0);
        self.comp_mark.push(0);
        self.nl_idx.push(0);
        self.nl_mark.push(0);
        self.util_up.push(0.0);
        self.util_down.push(0.0);
        id
    }

    /// Add a node with the given up/downstream capacities. Infinite
    /// capacities are allowed (edge servers are modeled as amply
    /// provisioned).
    pub fn add_node(&mut self, up: Bandwidth, down: Bandwidth) -> NodeId {
        self.push_node(up.bytes_per_sec(), down.bytes_per_sec())
    }

    /// Add an *uncapacitated* node (infinite both ways) — for server tiers.
    pub fn add_infinite_node(&mut self) -> NodeId {
        self.push_node(f64::INFINITY, f64::INFINITY)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.live
    }

    /// Change a node's capacities (e.g. the user's link becomes busy and the
    /// upload throttle tightens). Takes effect at the next recompute; a
    /// genuine change dirties the node's component.
    pub fn set_node_caps(&mut self, node: NodeId, up: Bandwidth, down: Bandwidth) {
        let (u, d) = (up.bytes_per_sec(), down.bytes_per_sec());
        let n = &mut self.nodes[node.0 as usize];
        if n.up != u || n.down != d {
            n.up = u;
            n.down = d;
            self.mark_dirty(node.0);
        }
    }

    /// Start a flow from `src`'s upstream to `dst`'s downstream, with an
    /// optional rate ceiling.
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, ceil: Option<Bandwidth>) -> FlowId {
        assert!((src.0 as usize) < self.nodes.len(), "bad src node");
        assert!((dst.0 as usize) < self.nodes.len(), "bad dst node");
        let seq = self.next_seq;
        self.next_seq += 1;
        let flow = Flow {
            src,
            dst,
            ceil: ceil.map_or(MAX_RATE, |b| b.bytes_per_sec().min(MAX_RATE)),
            rate: 0.0,
            seq,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].flow = Some(flow);
                s
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    flow: Some(flow),
                });
                self.slot_pos.push(u32::MAX);
                (self.slots.len() - 1) as u32
            }
        };
        self.slot_pos[slot as usize] = self.live_slots.len() as u32;
        self.live_slots.push(slot);
        self.live += 1;
        self.union(src.0, dst.0);
        self.mark_dirty(src.0);
        let id = FlowId {
            slot,
            gen: self.slots[slot as usize].gen,
        };
        if self.trace_ctx.sampled {
            let span = self
                .trace
                .instant(self.trace_ctx, "flow_attach", "sim", self.trace_now_us);
            self.trace.add_attr(span, "flow", id.slot as u64);
            self.trace.add_attr(span, "src", src.0 as u64);
            self.trace.add_attr(span, "dst", dst.0 as u64);
        }
        id
    }

    /// Tighten or relax a flow's ceiling. A genuine change dirties the
    /// flow's component; setting the same ceiling again is free.
    pub fn set_flow_ceil(&mut self, flow: FlowId, ceil: Option<Bandwidth>) {
        let new_ceil = ceil.map_or(MAX_RATE, |b| b.bytes_per_sec().min(MAX_RATE));
        let Some(f) = self.get_mut(flow) else { return };
        if f.ceil != new_ceil {
            f.ceil = new_ceil;
            let src = f.src.0;
            self.mark_dirty(src);
        }
    }

    /// End a flow. Unknown or stale IDs are ignored (idempotent teardown).
    pub fn remove_flow(&mut self, flow: FlowId) {
        let Some(slot) = self.slots.get_mut(flow.slot as usize) else {
            return;
        };
        if slot.gen != flow.gen {
            return;
        }
        let Some(f) = slot.flow.take() else { return };
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(flow.slot);
        let pos = self.slot_pos[flow.slot as usize] as usize;
        self.live_slots.swap_remove(pos);
        if let Some(&moved) = self.live_slots.get(pos) {
            self.slot_pos[moved as usize] = pos as u32;
        }
        self.slot_pos[flow.slot as usize] = u32::MAX;
        self.live -= 1;
        self.stale_removals += 1;
        self.util_up[f.src.0 as usize] -= f.rate;
        self.util_down[f.dst.0 as usize] -= f.rate;
        self.mark_dirty(f.src.0);
        self.mark_dirty(f.dst.0);
        if self.trace_ctx.sampled {
            let span = self
                .trace
                .instant(self.trace_ctx, "flow_detach", "sim", self.trace_now_us);
            self.trace.add_attr(span, "flow", flow.slot as u64);
        }
    }

    /// Current rate of a flow (zero for unknown or stale IDs).
    pub fn rate(&self, flow: FlowId) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.get(flow).map_or(0.0, |f| f.rate))
    }

    /// Endpoints of a flow.
    pub fn endpoints(&self, flow: FlowId) -> Option<(NodeId, NodeId)> {
        self.get(flow).map(|f| (f.src, f.dst))
    }

    fn get(&self, id: FlowId) -> Option<&Flow> {
        self.slots
            .get(id.slot as usize)
            .filter(|s| s.gen == id.gen)
            .and_then(|s| s.flow.as_ref())
    }

    fn get_mut(&mut self, id: FlowId) -> Option<&mut Flow> {
        self.slots
            .get_mut(id.slot as usize)
            .filter(|s| s.gen == id.gen)
            .and_then(|s| s.flow.as_mut())
    }

    // --- Union-find over nodes.

    fn find(&mut self, mut x: u32) -> u32 {
        if self.uf_stamp[x as usize] != self.uf_epoch {
            // Not yet touched this epoch: an implicit singleton.
            self.uf_stamp[x as usize] = self.uf_epoch;
            self.parent[x as usize] = x;
            self.rank[x as usize] = 0;
            return x;
        }
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }

    /// Reset the partition to exact connectivity over the live flows: bump
    /// the epoch (implicitly isolating every node) and re-union the live
    /// edges. Union order differs from a slab scan, which can only change
    /// which member of a component happens to be its root — every use of
    /// the partition compares roots or marks per-root flags, so the
    /// resulting behaviour is identical.
    fn rebuild_partition(&mut self) {
        self.uf_epoch += 1;
        for li in 0..self.live_slots.len() {
            let s = self.live_slots[li] as usize;
            let Some((a, b)) = self.slots[s].flow.as_ref().map(|f| (f.src.0, f.dst.0)) else {
                continue;
            };
            self.union(a, b);
        }
        self.stale_removals = 0;
    }

    fn mark_dirty(&mut self, node: u32) {
        if self.dirty_mark[node as usize] != self.epoch {
            self.dirty_mark[node as usize] = self.epoch;
            self.dirty_nodes.push(node);
        }
    }

    // --- Recomputation.

    /// Recompute all flow rates by progressive filling (max-min fairness).
    /// The full-recomputation fallback: rebuilds the exact component
    /// partition and re-fills every component. Use
    /// [`recompute_dirty`](FlowNet::recompute_dirty) on the hot path.
    pub fn recompute(&mut self) {
        self.rebuild_partition();
        let mut members = std::mem::take(&mut self.members_scratch);
        members.clear();
        for s in 0..self.slots.len() {
            if let Some(f) = self.slots[s].flow.as_ref() {
                members.push((f.seq, s as u32));
            }
        }
        members.sort_unstable();
        let mut member_slots = std::mem::take(&mut self.slots_scratch);
        member_slots.clear();
        member_slots.extend(members.iter().map(|&(_, s)| s));
        self.members_scratch = members;

        for u in &mut self.util_up {
            *u = 0.0;
        }
        for d in &mut self.util_down {
            *d = 0.0;
        }

        self.recompute_ctr.incr();
        self.flows_per_recompute.record(self.live as u64);
        self.flows_recomputed_ctr.add(member_slots.len() as u64);
        let filled = self.fill_candidates(&member_slots);
        self.slots_scratch = member_slots;
        self.dirty_components_ctr.add(filled as u64);
        self.components_gauge.set(filled as i64);

        self.dirty_nodes.clear();
        self.epoch += 1;
    }

    /// Recompute rates only inside components dirtied since the last
    /// recompute (by flow add/remove, ceiling changes, or node capacity
    /// changes). A no-op when nothing is dirty. Produces byte-identical
    /// rates to a full [`recompute`](FlowNet::recompute): both paths fill
    /// each exact connected component independently, visiting member flows
    /// in creation order.
    pub fn recompute_dirty(&mut self) {
        if self.dirty_nodes.is_empty() {
            return;
        }
        // Removals make the coarse partition stale (components can only
        // appear merged, never split — safe but wasteful). Re-derive it
        // once staleness could double the recomputed set.
        if self.stale_removals > 64 && self.stale_removals * 4 > self.live {
            self.rebuild_partition();
        }

        self.scan_epoch += 1;
        let mut dirty = std::mem::take(&mut self.dirty_nodes);
        for &n in &dirty {
            let r = self.find(n);
            self.root_mark[r as usize] = self.scan_epoch;
        }

        // One pass over the slab: count distinct components (gauge) and
        // collect flows whose component root is dirty.
        let mut members = std::mem::take(&mut self.members_scratch);
        members.clear();
        let mut components_total = 0usize;
        for li in 0..self.live_slots.len() {
            let s = self.live_slots[li] as usize;
            let Some((src, seq)) = self.slots[s].flow.as_ref().map(|f| (f.src.0, f.seq)) else {
                continue;
            };
            let r = self.find(src);
            if self.comp_mark[r as usize] != self.scan_epoch {
                self.comp_mark[r as usize] = self.scan_epoch;
                components_total += 1;
            }
            if self.root_mark[r as usize] == self.scan_epoch {
                members.push((seq, s as u32));
            }
        }
        members.sort_unstable();
        let mut member_slots = std::mem::take(&mut self.slots_scratch);
        member_slots.clear();
        member_slots.extend(members.iter().map(|&(_, s)| s));
        self.members_scratch = members;

        // A dirty node whose flows all vanished is re-filled by nothing:
        // zero its aggregates here (filling overwrites nodes that still
        // carry flows).
        for &n in &dirty {
            self.util_up[n as usize] = 0.0;
            self.util_down[n as usize] = 0.0;
        }
        dirty.clear();
        self.dirty_nodes = dirty;

        self.recompute_ctr.incr();
        self.flows_per_recompute.record(self.live as u64);
        self.flows_recomputed_ctr.add(member_slots.len() as u64);
        let filled = self.fill_candidates(&member_slots);
        self.slots_scratch = member_slots;
        self.dirty_components_ctr.add(filled as u64);
        self.components_gauge.set(components_total as i64);

        self.epoch += 1;
    }

    /// Split `members` (flow slots, sorted by creation order) into exact
    /// connected components and fill each independently. Returns the number
    /// of components filled.
    fn fill_candidates(&mut self, members: &[u32]) -> usize {
        if members.is_empty() {
            return 0;
        }
        // Local union-find over just the candidate flows: the coarse
        // partition may be stale (merged), so exact splitting here is what
        // guarantees byte-identical fills between the dirty and full paths.
        self.nl_epoch += 1;
        let mut cs = std::mem::take(&mut self.cand);
        cs.lsrc.clear();
        cs.ldst.clear();
        cs.lparent.clear();
        cs.lrank.clear();
        for &s in members {
            let f = self.slots[s as usize].flow.as_ref().unwrap();
            for e in [f.src.0 as usize, f.dst.0 as usize] {
                if self.nl_mark[e] != self.nl_epoch {
                    self.nl_mark[e] = self.nl_epoch;
                    self.nl_idx[e] = cs.lparent.len() as u32;
                    cs.lparent.push(cs.lparent.len() as u32);
                    cs.lrank.push(0);
                }
            }
            cs.lsrc.push(self.nl_idx[f.src.0 as usize]);
            cs.ldst.push(self.nl_idx[f.dst.0 as usize]);
        }
        fn lfind(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let grand = parent[parent[x as usize] as usize];
                parent[x as usize] = grand;
                x = grand;
            }
            x
        }
        for k in 0..members.len() {
            let (ra, rb) = (
                lfind(&mut cs.lparent, cs.lsrc[k]),
                lfind(&mut cs.lparent, cs.ldst[k]),
            );
            if ra == rb {
                continue;
            }
            match cs.lrank[ra as usize].cmp(&cs.lrank[rb as usize]) {
                std::cmp::Ordering::Less => cs.lparent[ra as usize] = rb,
                std::cmp::Ordering::Greater => cs.lparent[rb as usize] = ra,
                std::cmp::Ordering::Equal => {
                    cs.lparent[rb as usize] = ra;
                    cs.lrank[ra as usize] += 1;
                }
            }
        }

        // Bucket members by component, preserving creation order within
        // each (members are sorted, pushes preserve order). Inner Vecs are
        // pooled across calls: cleared on reuse, never dropped.
        cs.comp_of_root.clear();
        cs.comp_of_root.resize(cs.lparent.len(), u32::MAX);
        let mut used = 0usize;
        for (k, &s) in members.iter().enumerate() {
            let r = lfind(&mut cs.lparent, cs.lsrc[k]) as usize;
            if cs.comp_of_root[r] == u32::MAX {
                cs.comp_of_root[r] = used as u32;
                if cs.comps.len() == used {
                    cs.comps.push(Vec::new());
                }
                cs.comps[used].clear();
                used += 1;
            }
            cs.comps[cs.comp_of_root[r] as usize].push(s);
        }
        for comp in &cs.comps[..used] {
            self.fill_component(comp);
        }
        self.cand = cs;
        used
    }

    /// Progressive filling restricted to one connected component. The loop
    /// works on dense scratch arrays and an active-flow list that shrinks
    /// as flows freeze, so the common case is far below the theoretical
    /// O(F²) bound. Also rebuilds the component's per-node utilization
    /// aggregates exactly (every flow touching a member node is a member).
    fn fill_component(&mut self, comp: &[u32]) {
        let n = comp.len();
        self.nl_epoch += 1;
        let mut fs = std::mem::take(&mut self.fill);
        let FillScratch {
            cn,
            cap_up,
            cap_down,
            resid_up,
            resid_down,
            up_count,
            down_count,
            src,
            dst,
            ceil,
            rate,
            active,
            live_nodes,
            up_thr,
            down_thr,
            rate_thr,
        } = &mut fs;
        cn.clear();
        cap_up.clear();
        cap_down.clear();
        resid_up.clear();
        resid_down.clear();
        up_count.clear();
        down_count.clear();
        src.clear();
        dst.clear();
        ceil.clear();
        up_thr.clear();
        down_thr.clear();
        rate_thr.clear();
        for &s in comp {
            let f = self.slots[s as usize].flow.as_ref().unwrap();
            let (a, b, c) = (f.src.0 as usize, f.dst.0 as usize, f.ceil);
            for e in [a, b] {
                if self.nl_mark[e] != self.nl_epoch {
                    self.nl_mark[e] = self.nl_epoch;
                    self.nl_idx[e] = cn.len() as u32;
                    cn.push(e as u32);
                    let node = &self.nodes[e];
                    cap_up.push(node.up);
                    cap_down.push(node.down);
                    resid_up.push(node.up);
                    resid_down.push(node.down);
                    up_count.push(0);
                    down_count.push(0);
                    // Saturation thresholds folded once per fill: the
                    // round-loop test `finite && (resid <= EPS*cap ||
                    // resid <= 1e-6)` is `resid <= max(EPS*cap, 1e-6)`
                    // for finite caps (same comparisons, same floats) and
                    // always-false for infinite ones, which -inf encodes.
                    up_thr.push(if node.up.is_finite() {
                        (EPS * node.up).max(1e-6)
                    } else {
                        f64::NEG_INFINITY
                    });
                    down_thr.push(if node.down.is_finite() {
                        (EPS * node.down).max(1e-6)
                    } else {
                        f64::NEG_INFINITY
                    });
                }
            }
            let (sl, dl) = (self.nl_idx[a] as usize, self.nl_idx[b] as usize);
            up_count[sl] += 1;
            down_count[dl] += 1;
            src.push(sl);
            dst.push(dl);
            ceil.push(c);
            // `at_ceil || capped` is one comparison against the smaller
            // of the two freeze lines (both are `rate >= x` tests).
            rate_thr.push((c - EPS * c.max(1.0)).min(MAX_RATE));
        }

        rate.clear();
        rate.resize(n, 0.0);
        active.clear();
        active.extend(0..n);
        // Running min of each unfrozen flow's ceiling headroom
        // (`ceil[k] - rate[k]`), maintained across rounds so the round
        // loop does not need a dedicated O(active) scan for it. f64 min
        // is exact and order-independent, so folding the same values in
        // a different order yields the bit-identical minimum.
        let mut flow_min = f64::INFINITY;
        for &c in ceil.iter() {
            flow_min = flow_min.min(c);
        }
        // Only node sides that can ever constrain the increment: a side
        // with no unfrozen flows contributes nothing, and an infinite side
        // (edge servers) has ratio inf — it never moves the min and never
        // saturates. Skipping both leaves every computed `inc` identical
        // (min over the same set of finite ratios) while shrinking the
        // per-round scan from all component nodes to the constraining few.
        live_nodes.clear();
        for i in 0..cn.len() {
            if (up_count[i] > 0 && cap_up[i].is_finite())
                || (down_count[i] > 0 && cap_down[i].is_finite())
            {
                live_nodes.push(i as u32);
            }
        }
        while !active.is_empty() {
            // The uniform increment every unfrozen flow can still take.
            let mut inc = f64::INFINITY;
            let mut i = 0;
            while i < live_nodes.len() {
                let nx = live_nodes[i] as usize;
                let up_live = up_count[nx] > 0 && cap_up[nx].is_finite();
                let down_live = down_count[nx] > 0 && cap_down[nx].is_finite();
                if !up_live && !down_live {
                    live_nodes.swap_remove(i);
                    continue;
                }
                if up_live {
                    inc = inc.min(resid_up[nx] / up_count[nx] as f64);
                }
                if down_live {
                    inc = inc.min(resid_down[nx] / down_count[nx] as f64);
                }
                i += 1;
            }
            inc = inc.min(flow_min);
            if !inc.is_finite() {
                inc = MAX_RATE;
            }
            inc = inc.max(0.0);

            // Apply the increment.
            for &k in active.iter() {
                rate[k] += inc;
                resid_up[src[k]] -= inc;
                resid_down[dst[k]] -= inc;
            }

            // Freeze flows at a saturated resource or at their ceiling.
            // Infinite-capacity sides (edge servers) can never saturate —
            // without the finiteness guard, `inf - inc <= EPS * inf` is
            // true and every edge flow would freeze at the first
            // increment. The retain pass doubles as the producer of the
            // next round's flow-ceiling minimum over exactly the flows
            // that survive it.
            let before = active.len();
            flow_min = f64::INFINITY;
            active.retain(|&k| {
                let freeze = resid_up[src[k]] <= up_thr[src[k]]
                    || resid_down[dst[k]] <= down_thr[dst[k]]
                    || rate[k] >= rate_thr[k];
                if freeze {
                    up_count[src[k]] -= 1;
                    down_count[dst[k]] -= 1;
                } else {
                    flow_min = flow_min.min(ceil[k] - rate[k]);
                }
                !freeze
            });
            // Progress guarantee: if numerically nothing froze, freeze the
            // first remaining flow to avoid an infinite loop. Its ceiling
            // headroom may have been folded into `flow_min` above, so
            // rebuild the min over the flows actually left.
            if active.len() == before {
                let k = active.remove(0);
                up_count[src[k]] -= 1;
                down_count[dst[k]] -= 1;
                flow_min = f64::INFINITY;
                for &k in active.iter() {
                    flow_min = flow_min.min(ceil[k] - rate[k]);
                }
            }
        }

        // Write back rates and rebuild the component's utilization
        // aggregates (accumulated in creation order, matching what a flow
        // scan in creation order would sum).
        for &nid in cn.iter() {
            self.util_up[nid as usize] = 0.0;
            self.util_down[nid as usize] = 0.0;
        }
        for (k, &s) in comp.iter().enumerate() {
            let f = self.slots[s as usize].flow.as_mut().unwrap();
            f.rate = rate[k];
            let (a, b) = (f.src.0 as usize, f.dst.0 as usize);
            self.util_up[a] += rate[k];
            self.util_down[b] += rate[k];
        }
        self.fill = fs;
    }

    /// Sum of current flow rates into `node` (its downstream utilization).
    /// An O(1) read of the maintained aggregate.
    pub fn downstream_utilization(&self, node: NodeId) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.util_down[node.0 as usize])
    }

    /// Sum of current flow rates out of `node` (its upstream utilization).
    /// An O(1) read of the maintained aggregate.
    pub fn upstream_utilization(&self, node: NodeId) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.util_up[node.0 as usize])
    }

    /// Deterministic checksum over (creation stamp, rate bits) of all live
    /// flows. Two nets that went through the same mutation sequence have
    /// equal checksums iff they assigned byte-identical rates — the
    /// equivalence probe for `recompute` vs `recompute_dirty`.
    pub fn rate_checksum(&self) -> u64 {
        let mut items: Vec<(u64, u64)> = self
            .slots
            .iter()
            .filter_map(|s| s.flow.as_ref())
            .map(|f| (f.seq, f.rate.to_bits()))
            .collect();
        items.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (seq, bits) in items {
            h ^= seq;
            h = h.wrapping_mul(0x1000_0000_01b3);
            h ^= bits;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(v: f64) -> Bandwidth {
        Bandwidth::from_mbps(v)
    }

    fn assert_close(a: Bandwidth, mbps_expected: f64) {
        assert!(
            (a.as_mbps() - mbps_expected).abs() < 0.01,
            "expected {mbps_expected} Mbps, got {}",
            a.as_mbps()
        );
    }

    #[test]
    fn single_flow_limited_by_slowest_side() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(1.0), mbps(20.0));
        let b = net.add_node(mbps(5.0), mbps(50.0));
        let f = net.add_flow(a, b, None);
        net.recompute();
        assert_close(net.rate(f), 1.0); // a's upstream is the bottleneck
    }

    #[test]
    fn flow_ceiling_binds() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(10.0), mbps(10.0));
        let b = net.add_node(mbps(10.0), mbps(10.0));
        let f = net.add_flow(a, b, Some(mbps(2.0)));
        net.recompute();
        assert_close(net.rate(f), 2.0);
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(8.0), mbps(100.0));
        let d1 = net.add_node(mbps(1.0), mbps(100.0));
        let d2 = net.add_node(mbps(1.0), mbps(100.0));
        let f1 = net.add_flow(src, d1, None);
        let f2 = net.add_flow(src, d2, None);
        net.recompute();
        assert_close(net.rate(f1), 4.0);
        assert_close(net.rate(f2), 4.0);
    }

    #[test]
    fn max_min_redistributes_slack_from_capped_flow() {
        // Source has 10 Mbps up; flow 1 is capped at 2, so flow 2 should
        // get the remaining 8 — strict equal-split would give it only 5.
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(10.0), mbps(100.0));
        let d1 = net.add_node(mbps(100.0), mbps(100.0));
        let d2 = net.add_node(mbps(100.0), mbps(100.0));
        let f1 = net.add_flow(src, d1, Some(mbps(2.0)));
        let f2 = net.add_flow(src, d2, None);
        net.recompute();
        assert_close(net.rate(f1), 2.0);
        assert_close(net.rate(f2), 8.0);
    }

    #[test]
    fn downstream_bottleneck_shared_across_sources() {
        // Two seeders with ample upstream feed one downloader with 6 Mbps
        // downstream: each flow gets 3.
        let mut net = FlowNet::new();
        let s1 = net.add_node(mbps(50.0), mbps(50.0));
        let s2 = net.add_node(mbps(50.0), mbps(50.0));
        let d = net.add_node(mbps(50.0), mbps(6.0));
        let f1 = net.add_flow(s1, d, None);
        let f2 = net.add_flow(s2, d, None);
        net.recompute();
        assert_close(net.rate(f1), 3.0);
        assert_close(net.rate(f2), 3.0);
    }

    #[test]
    fn asymmetric_links_mirror_broadband() {
        // Downloader has 16/1 ADSL-ish link; a single peer upload to it is
        // limited by the *peer's* 1 Mbps upstream even though the
        // downloader could take 16.
        let mut net = FlowNet::new();
        let peer = net.add_node(mbps(1.0), mbps(16.0));
        let dl = net.add_node(mbps(1.0), mbps(16.0));
        let f = net.add_flow(peer, dl, None);
        net.recompute();
        assert_close(net.rate(f), 1.0);
    }

    #[test]
    fn infinite_edge_server_fills_client_downlink() {
        let mut net = FlowNet::new();
        let edge = net.add_infinite_node();
        let dl = net.add_node(mbps(1.0), mbps(16.0));
        let f = net.add_flow(edge, dl, None);
        net.recompute();
        assert_close(net.rate(f), 16.0);
    }

    #[test]
    fn flow_removal_restores_capacity() {
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(4.0), mbps(100.0));
        let d1 = net.add_node(mbps(100.0), mbps(100.0));
        let d2 = net.add_node(mbps(100.0), mbps(100.0));
        let f1 = net.add_flow(src, d1, None);
        let f2 = net.add_flow(src, d2, None);
        net.recompute();
        assert_close(net.rate(f1), 2.0);
        net.remove_flow(f2);
        net.recompute();
        assert_close(net.rate(f1), 4.0);
        assert_eq!(net.rate(f2), Bandwidth::ZERO);
    }

    #[test]
    fn capacity_change_takes_effect() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(10.0), mbps(10.0));
        let b = net.add_node(mbps(10.0), mbps(10.0));
        let f = net.add_flow(a, b, None);
        net.recompute();
        assert_close(net.rate(f), 10.0);
        net.set_node_caps(a, mbps(0.5), mbps(10.0));
        net.recompute();
        assert_close(net.rate(f), 0.5);
    }

    #[test]
    fn utilization_sums() {
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(10.0), mbps(10.0));
        let d = net.add_node(mbps(10.0), mbps(3.0));
        net.add_flow(src, d, None);
        net.add_flow(src, d, None);
        net.recompute();
        assert_close(net.downstream_utilization(d), 3.0);
        assert_close(net.upstream_utilization(src), 3.0);
    }

    #[test]
    fn no_flows_recompute_is_noop() {
        let mut net = FlowNet::new();
        net.add_node(mbps(1.0), mbps(1.0));
        net.recompute(); // must not panic or loop
        assert_eq!(net.flow_count(), 0);
    }

    #[test]
    fn stale_flow_id_never_aliases_slot_reuse() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(10.0), mbps(10.0));
        let b = net.add_node(mbps(10.0), mbps(10.0));
        let f1 = net.add_flow(a, b, None);
        net.recompute();
        net.remove_flow(f1);
        // The replacement reuses f1's slot but carries a new generation.
        let f2 = net.add_flow(a, b, Some(mbps(2.0)));
        net.recompute();
        assert_eq!(net.rate(f1), Bandwidth::ZERO, "stale id reads zero");
        assert!(net.endpoints(f1).is_none(), "stale id resolves nothing");
        assert_close(net.rate(f2), 2.0);
        // Removing through the stale id is a no-op; f2 survives.
        net.remove_flow(f1);
        assert_eq!(net.flow_count(), 1);
        assert_close(net.rate(f2), 2.0);
    }

    #[test]
    fn recompute_dirty_is_noop_when_clean() {
        let mut net = FlowNet::new();
        let a = net.add_node(mbps(10.0), mbps(10.0));
        let b = net.add_node(mbps(10.0), mbps(10.0));
        let f = net.add_flow(a, b, None);
        net.recompute();
        let before = net.rate(f);
        net.recompute_dirty(); // nothing dirty: rates untouched
        assert_eq!(net.rate(f).bytes_per_sec(), before.bytes_per_sec());
        // Setting the identical ceiling dirties nothing either.
        net.set_flow_ceil(f, None);
        net.recompute_dirty();
        assert_eq!(net.rate(f).bytes_per_sec(), before.bytes_per_sec());
    }

    #[test]
    fn recompute_dirty_only_touches_dirty_component() {
        let mut net = FlowNet::new();
        // Component 1: a -> b. Component 2: c -> d.
        let a = net.add_node(mbps(10.0), mbps(100.0));
        let b = net.add_node(mbps(10.0), mbps(100.0));
        let c = net.add_node(mbps(8.0), mbps(100.0));
        let d = net.add_node(mbps(8.0), mbps(100.0));
        let f_ab = net.add_flow(a, b, None);
        let f_cd = net.add_flow(c, d, None);
        net.recompute();
        assert_close(net.rate(f_ab), 10.0);
        assert_close(net.rate(f_cd), 8.0);
        // Dirty only component 2; component 1's rate must be preserved
        // bit-for-bit (not re-derived).
        let ab_bits = net.rate(f_ab).bytes_per_sec().to_bits();
        net.set_node_caps(c, mbps(4.0), mbps(100.0));
        net.recompute_dirty();
        assert_close(net.rate(f_cd), 4.0);
        assert_eq!(net.rate(f_ab).bytes_per_sec().to_bits(), ab_bits);
    }

    #[test]
    fn incremental_matches_full_after_component_merge_and_split() {
        // Build two components, bridge them (merge), drop the bridge
        // (split): the dirty path must agree with the full path throughout.
        let ops_on = |net: &mut FlowNet| {
            let a = net.add_node(mbps(10.0), mbps(100.0));
            let b = net.add_node(mbps(6.0), mbps(100.0));
            let c = net.add_node(mbps(8.0), mbps(100.0));
            let d = net.add_node(mbps(4.0), mbps(100.0));
            let f1 = net.add_flow(a, b, None);
            let f2 = net.add_flow(c, d, None);
            let bridge = net.add_flow(b, c, Some(mbps(3.0)));
            (f1, f2, bridge)
        };
        let mut inc = FlowNet::new();
        let mut full = FlowNet::new();
        let (i1, i2, ib) = ops_on(&mut inc);
        let (.., fb) = ops_on(&mut full);
        inc.recompute_dirty();
        full.recompute();
        assert_eq!(inc.rate_checksum(), full.rate_checksum());
        inc.remove_flow(ib);
        full.remove_flow(fb);
        inc.recompute_dirty();
        full.recompute();
        assert_eq!(inc.rate_checksum(), full.rate_checksum());
        assert!(net_rates_finite(&inc, &[i1, i2]));
    }

    fn net_rates_finite(net: &FlowNet, flows: &[FlowId]) -> bool {
        flows
            .iter()
            .all(|f| net.rate(*f).bytes_per_sec().is_finite())
    }

    #[test]
    fn utilization_tracks_removals_between_recomputes() {
        let mut net = FlowNet::new();
        let src = net.add_node(mbps(10.0), mbps(10.0));
        let d = net.add_node(mbps(10.0), mbps(4.0));
        let f1 = net.add_flow(src, d, None);
        let f2 = net.add_flow(src, d, None);
        net.recompute();
        assert_close(net.downstream_utilization(d), 4.0);
        net.remove_flow(f1);
        // Before the recompute the aggregate already excludes f1.
        assert_close(net.downstream_utilization(d), 2.0);
        net.recompute_dirty();
        assert_close(net.downstream_utilization(d), 4.0);
        net.remove_flow(f2);
        net.recompute_dirty();
        assert_eq!(net.downstream_utilization(d), Bandwidth::ZERO);
        assert_eq!(net.upstream_utilization(src), Bandwidth::ZERO);
    }

    /// The defining max-min property: every flow is either at its ceiling or
    /// passes through at least one saturated resource, and no resource is
    /// over capacity.
    #[test]
    fn max_min_invariants_on_random_networks() {
        use netsession_core::rng::DetRng;
        let mut rng = DetRng::seeded(99);
        for round in 0..30 {
            let mut net = FlowNet::new();
            let n = 3 + rng.index(8);
            let mut node_caps: Vec<(f64, f64)> = Vec::new();
            let nodes: Vec<NodeId> = (0..n)
                .map(|_| {
                    let up = mbps(rng.range_f64(0.5, 20.0));
                    let down = mbps(rng.range_f64(2.0, 100.0));
                    node_caps.push((up.bytes_per_sec(), down.bytes_per_sec()));
                    net.add_node(up, down)
                })
                .collect();
            let f = 1 + rng.index(20);
            let mut flow_specs: Vec<(NodeId, NodeId, f64)> = Vec::new();
            let flows: Vec<FlowId> = (0..f)
                .map(|_| {
                    let s = nodes[rng.index(n)];
                    let mut d = nodes[rng.index(n)];
                    while d == s {
                        d = nodes[rng.index(n)];
                    }
                    let ceil = if rng.chance(0.3) {
                        Some(mbps(rng.range_f64(0.1, 5.0)))
                    } else {
                        None
                    };
                    flow_specs.push((s, d, ceil.map_or(MAX_RATE, |b| b.bytes_per_sec())));
                    net.add_flow(s, d, ceil)
                })
                .collect();
            net.recompute();

            // Capacity feasibility.
            for (i, node) in nodes.iter().enumerate() {
                let up = net.upstream_utilization(*node).bytes_per_sec();
                let down = net.downstream_utilization(*node).bytes_per_sec();
                let (cap_up, cap_down) = node_caps[i];
                assert!(
                    up <= cap_up * (1.0 + 1e-6) + 1e-3,
                    "round {round}: up overload"
                );
                assert!(
                    down <= cap_down * (1.0 + 1e-6) + 1e-3,
                    "round {round}: down overload"
                );
            }
            // Bottleneck property.
            for (fid, (s, d, ceil)) in flows.iter().zip(&flow_specs) {
                let rate = net.rate(*fid).bytes_per_sec();
                let at_ceil = rate >= ceil * (1.0 - 1e-6);
                let src_up = net.upstream_utilization(*s).bytes_per_sec();
                let dst_down = net.downstream_utilization(*d).bytes_per_sec();
                let src_sat = src_up >= node_caps[s.0 as usize].0 * (1.0 - 1e-6) - 1e-3;
                let dst_sat = dst_down >= node_caps[d.0 as usize].1 * (1.0 - 1e-6) - 1e-3;
                assert!(
                    at_ceil || src_sat || dst_sat,
                    "round {round}: flow {fid:?} is not bottlenecked anywhere (rate {rate})"
                );
            }
        }
    }
}
