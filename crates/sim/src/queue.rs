//! Pluggable event-queue storage.
//!
//! The kernel's ordering contract — earliest timestamp first, FIFO on the
//! insertion sequence number for same-instant events — is owned by
//! [`EventQueue`](crate::engine::EventQueue); this module provides the
//! storage backends it can run on:
//!
//! * [`BinaryHeapSched`] — the original binary heap. Simple, obviously
//!   correct, and kept as the *oracle*: property tests replay hundreds of
//!   seeded schedules against it to prove any other backend produces a
//!   bit-identical pop stream.
//! * [`TimingWheel`] — a hierarchical timing wheel (8 levels × 64 slots,
//!   1 µs ticks, ≈8.9 simulated years of horizon). Scheduling is O(1) and
//!   popping is amortized O(levels), versus O(log n) for the heap; on the
//!   headline run (~900 k events, queue depth ~780 k) the wheel removes the
//!   heap's cache-hostile sift traffic from the hot loop. Selected as the
//!   default backend by benchmark (see `docs/PERFORMANCE.md`).
//!
//! # Timing-wheel placement
//!
//! The wheel keeps an internal `cursor` (≤ every pending timestamp). An
//! entry for absolute microsecond `t` lands at level `⌊b/6⌋`, where `b` is
//! the highest bit in which `t` differs from the cursor, in slot
//! `(t >> 6·level) & 63`. Level 0 slots therefore hold exactly one
//! timestamp each (all bits above the slot index agree with the cursor),
//! which is what makes FIFO tie-breaking free: same-instant entries share a
//! level-0 slot and are appended — and later drained — in insertion order.
//! Popping from a higher level *cascades*: the cursor advances to the start
//! of the chosen slot's time range and the slot's entries are re-placed at
//! lower levels, preserving their relative order. Entries beyond the
//! top-level horizon wait in an overflow list; the cursor's 2^48 µs window
//! never passes an overflow entry's window, so overflow promotion cannot
//! reorder time.

use netsession_core::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Storage backend for the event kernel.
///
/// Implementations must pop entries in ascending `(at, seq)` order. The
/// kernel assigns `seq` monotonically, so for any fixed timestamp the
/// insertion order *is* the seq order — an implementation that preserves
/// per-timestamp insertion order (like the timing wheel) satisfies the
/// contract without ever comparing seq numbers.
pub trait EventSched<E> {
    /// Insert an entry. The kernel guarantees `at` is not in the past and
    /// `seq` is strictly increasing across calls.
    fn push(&mut self, at: SimTime, seq: u64, event: E);
    /// Remove and return the earliest entry (FIFO among equal timestamps).
    fn pop(&mut self) -> Option<(SimTime, u64, E)>;
    /// Timestamp of the earliest entry without removing it.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of pending entries.
    fn len(&self) -> usize;
    /// Whether no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap backend, kept as the correctness oracle.
pub struct BinaryHeapSched<E> {
    heap: BinaryHeap<HeapEntry<E>>,
}

impl<E> Default for BinaryHeapSched<E> {
    fn default() -> Self {
        BinaryHeapSched {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> EventSched<E> for BinaryHeapSched<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.heap.push(HeapEntry { at, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Bits per wheel level: 64 slots each.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Slot-index mask.
const MASK: u64 = (SLOTS - 1) as u64;
/// Number of levels.
const LEVELS: usize = 8;
/// Timestamps at or beyond `cursor`'s 2^48 µs window go to the overflow
/// list (≈8.9 simulated years — far past any experiment's horizon).
const HORIZON: u64 = 1 << (BITS * LEVELS as u32);

struct WheelEntry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Hierarchical timing wheel: the default event-queue backend.
pub struct TimingWheel<E> {
    /// `LEVELS × SLOTS` buckets, row-major by level. Deques, not vecs:
    /// level-0 slots drain FIFO from the front while same-instant bursts
    /// keep appending at the back, and `Vec::remove(0)` there is O(n) per
    /// pop — O(n²) across a dense tie burst (e.g. a churn-wave's login
    /// herd all landing on one microsecond).
    slots: Vec<VecDeque<WheelEntry<E>>>,
    /// Per-level bitmask of non-empty slots.
    occupied: [u64; LEVELS],
    /// Entries beyond the top-level horizon, in insertion order.
    overflow: Vec<WheelEntry<E>>,
    /// Earliest timestamp in `overflow` (`u64::MAX` when empty), maintained
    /// on push and promotion so `peek_time` and `promote_overflow` never
    /// rescan the whole list.
    overflow_min: u64,
    /// Wheel position: ≤ every pending timestamp, and within the same
    /// 2^48 µs window as every in-wheel entry.
    cursor: u64,
    len: usize,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cursor: 0,
            len: 0,
        }
    }
}

impl<E> TimingWheel<E> {
    /// Level an entry at `at` belongs to relative to the current cursor,
    /// or `None` if it lies beyond the top-level horizon.
    fn level_of(&self, at: u64) -> Option<usize> {
        let diff = at ^ self.cursor;
        if diff >= HORIZON {
            return None;
        }
        if diff == 0 {
            Some(0)
        } else {
            Some((63 - diff.leading_zeros()) as usize / BITS as usize)
        }
    }

    fn place(&mut self, e: WheelEntry<E>) {
        debug_assert!(e.at >= self.cursor);
        match self.level_of(e.at) {
            None => {
                self.overflow_min = self.overflow_min.min(e.at);
                self.overflow.push(e);
            }
            Some(level) => {
                let slot = ((e.at >> (BITS as usize * level)) & MASK) as usize;
                self.occupied[level] |= 1 << slot;
                self.slots[level * SLOTS + slot].push_back(e);
            }
        }
    }

    /// Jump the cursor to the earliest overflow entry's window and re-place
    /// everything that now fits the wheel. Only called when the wheel is
    /// empty, and the cursor's window never passes an overflow window, so
    /// this cannot step backwards over pending work. Uses the cached
    /// minimum — the old full `min()` scan here, plus the one `peek_time`
    /// did per call once the wheel drained, was O(overflow) each time.
    fn promote_overflow(&mut self) {
        let min_at = self.overflow_min;
        debug_assert_eq!(
            Some(min_at),
            self.overflow.iter().map(|e| e.at).min(),
            "cached overflow minimum out of sync"
        );
        debug_assert!(min_at & !(HORIZON - 1) >= self.cursor & !(HORIZON - 1));
        self.cursor = min_at & !(HORIZON - 1);
        let pending = std::mem::take(&mut self.overflow);
        self.overflow_min = u64::MAX;
        for e in pending {
            self.place(e);
        }
    }
}

impl<E> EventSched<E> for TimingWheel<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.len += 1;
        self.place(WheelEntry {
            at: at.as_micros(),
            seq,
            event,
        });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty but len > 0: everything pending is overflow.
                self.promote_overflow();
                continue;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            let idx = level * SLOTS + slot;
            if level == 0 {
                // A level-0 slot holds exactly one timestamp; drain FIFO.
                // `pop_front` is O(1) — the old `Vec::remove(0)` shifted the
                // whole tail, making a dense same-instant burst quadratic.
                let e = self.slots[idx].pop_front().expect("occupied bit set");
                if self.slots[idx].is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                debug_assert!(e.at >= self.cursor);
                self.cursor = e.at;
                self.len -= 1;
                return Some((SimTime(e.at), e.seq, e.event));
            }
            // Cascade: advance the cursor to the start of this slot's time
            // range and re-place its entries at lower levels, preserving
            // their relative (insertion) order.
            let shift = BITS as usize * level;
            let upper = self.cursor >> (shift + BITS as usize) << (shift + BITS as usize);
            let slot_start = upper | ((slot as u64) << shift);
            debug_assert!(slot_start >= self.cursor);
            self.cursor = slot_start;
            self.occupied[level] &= !(1u64 << slot);
            let entries = std::mem::take(&mut self.slots[idx]);
            for e in entries {
                self.place(e);
            }
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                return Some(SimTime((self.cursor & !MASK) | slot as u64));
            }
            let min = self.slots[level * SLOTS + slot]
                .iter()
                .map(|e| e.at)
                .min()
                .unwrap();
            return Some(SimTime(min));
        }
        if self.overflow.is_empty() {
            None
        } else {
            Some(SimTime(self.overflow_min))
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E, S: EventSched<E>>(s: &mut S) -> Vec<(u64, u64)>
    where
        E: Copy,
    {
        std::iter::from_fn(|| s.pop().map(|(t, seq, _)| (t.as_micros(), seq))).collect()
    }

    #[test]
    fn wheel_orders_across_levels() {
        let mut w = TimingWheel::default();
        // One timestamp per level, inserted in reverse.
        let times = [
            HORIZON + 5, // overflow
            1 << 42,
            1 << 36,
            1 << 30,
            1 << 24,
            1 << 18,
            1 << 12,
            70,
            3,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(SimTime(t), i as u64, ());
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            drain(&mut w).iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            sorted
        );
    }

    #[test]
    fn wheel_is_fifo_at_same_instant() {
        let mut w = TimingWheel::default();
        for seq in 0..200u64 {
            w.push(SimTime(1_000_000), seq, ());
        }
        let popped = drain(&mut w);
        assert_eq!(popped, (0..200).map(|s| (1_000_000, s)).collect::<Vec<_>>());
    }

    #[test]
    fn wheel_peek_matches_pop() {
        let mut w = TimingWheel::default();
        for (seq, t) in [9u64, 400, 1 << 20, HORIZON + 77, 12, 9]
            .into_iter()
            .enumerate()
        {
            w.push(SimTime(t), seq as u64, ());
        }
        while !w.is_empty() {
            let peeked = w.peek_time().unwrap();
            let (popped, _, _) = w.pop().unwrap();
            assert_eq!(peeked, popped);
        }
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn wheel_handles_interleaved_push_pop() {
        let mut w = TimingWheel::default();
        w.push(SimTime(10), 0, "a");
        let (t, _, e) = w.pop().unwrap();
        assert_eq!((t, e), (SimTime(10), "a"));
        // Same-instant follow-up after the cursor advanced.
        w.push(SimTime(10), 1, "b");
        w.push(SimTime(11), 2, "c");
        assert_eq!(w.pop().unwrap().2, "b");
        assert_eq!(w.pop().unwrap().2, "c");
        assert!(w.pop().is_none());
    }

    #[test]
    fn overflow_promotion_keeps_order() {
        let mut w = TimingWheel::default();
        w.push(SimTime(HORIZON * 3 + 41), 0, "far");
        w.push(SimTime(HORIZON + 1), 1, "near-far");
        w.push(SimTime(5), 2, "now");
        assert_eq!(w.pop().unwrap().2, "now");
        assert_eq!(w.pop().unwrap().2, "near-far");
        assert_eq!(w.pop().unwrap().2, "far");
        assert!(w.pop().is_none());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn heap_and_wheel_agree_on_dense_ties() {
        let mut heap = BinaryHeapSched::default();
        let mut wheel = TimingWheel::default();
        for (seq, t) in [7u64, 7, 3, 3, 3, 7, 100, 3].into_iter().enumerate() {
            heap.push(SimTime(t), seq as u64, seq as u64);
            wheel.push(SimTime(t), seq as u64, seq as u64);
        }
        assert_eq!(drain(&mut heap), drain(&mut wheel));
    }
}
