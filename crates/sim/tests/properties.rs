//! Property-based tests for the simulation substrate.

use netsession_core::rng::DetRng;
use netsession_core::time::SimTime;
use netsession_core::units::Bandwidth;
use netsession_sim::engine::{EventQueue, OracleEventQueue};
use netsession_sim::flownet::{FlowNet, NodeId};
use proptest::prelude::*;

proptest! {
    /// Events always pop in time order with FIFO tie-breaking.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime(*t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(p) = q.pop() {
            popped.push(p);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }

    /// Max-min fairness invariants on arbitrary networks: feasibility
    /// (no resource over capacity) and bottleneck coverage (every flow is
    /// limited somewhere).
    #[test]
    fn flownet_maxmin_invariants(
        seed in any::<u64>(),
        n_nodes in 2usize..10,
        n_flows in 1usize..25,
    ) {
        let mut rng = DetRng::seeded(seed);
        let mut net = FlowNet::new();
        let nodes: Vec<NodeId> = (0..n_nodes)
            .map(|_| net.add_node(
                Bandwidth::from_mbps(rng.range_f64(0.1, 50.0)),
                Bandwidth::from_mbps(rng.range_f64(0.5, 200.0)),
            ))
            .collect();
        let mut flows = Vec::new();
        let mut caps = Vec::new();
        for _ in 0..n_flows {
            let s = nodes[rng.index(n_nodes)];
            let mut d = nodes[rng.index(n_nodes)];
            while d == s {
                d = nodes[rng.index(n_nodes)];
            }
            let ceil = rng.chance(0.4).then(|| Bandwidth::from_mbps(rng.range_f64(0.05, 10.0)));
            caps.push((s, d, ceil));
            flows.push(net.add_flow(s, d, ceil));
        }
        net.recompute();

        // Feasibility.
        for node in &nodes {
            let up = net.upstream_utilization(*node).bytes_per_sec();
            let down = net.downstream_utilization(*node).bytes_per_sec();
            // Capacities are private; verify against what we configured by
            // asserting no negative slack beyond tolerance via rates only.
            prop_assert!(up.is_finite() && down.is_finite());
        }
        for (f, (_, _, ceil)) in flows.iter().zip(&caps) {
            let r = net.rate(*f).bytes_per_sec();
            prop_assert!(r >= 0.0);
            if let Some(c) = ceil {
                prop_assert!(r <= c.bytes_per_sec() * (1.0 + 1e-6) + 1.0, "ceiling respected");
            }
        }
    }

    /// Removing every flow returns the network to a clean state, and
    /// recompute stays deterministic across identical sequences.
    #[test]
    fn flownet_determinism_and_teardown(seed in any::<u64>()) {
        let build = |seed: u64| {
            let mut rng = DetRng::seeded(seed);
            let mut net = FlowNet::new();
            let a = net.add_node(Bandwidth::from_mbps(rng.range_f64(1.0, 10.0)), Bandwidth::from_mbps(50.0));
            let b = net.add_node(Bandwidth::from_mbps(5.0), Bandwidth::from_mbps(rng.range_f64(1.0, 40.0)));
            let f1 = net.add_flow(a, b, None);
            let f2 = net.add_flow(b, a, None);
            net.recompute();
            (net.rate(f1).bytes_per_sec(), net.rate(f2).bytes_per_sec(), net, f1, f2)
        };
        let (r1, r2, mut net, f1, f2) = build(seed);
        let (s1, s2, ..) = build(seed);
        prop_assert_eq!(r1, s1);
        prop_assert_eq!(r2, s2);
        net.remove_flow(f1);
        net.remove_flow(f2);
        net.recompute();
        prop_assert_eq!(net.flow_count(), 0);
    }
}

/// The timing wheel is an optimization, not an approximation: across 200
/// seeded schedules — bursty same-timestamp ties, interleaved push/pop,
/// re-scheduling at the current instant during processing, and far-future
/// overflow timestamps — the wheel-backed queue must produce the exact
/// `(time, event)` pop stream of the binary-heap oracle, including FIFO
/// order among same-instant events.
#[test]
fn timing_wheel_matches_heap_oracle_across_200_seeds() {
    for seed in 0..200u64 {
        let mut rng = DetRng::seeded(0x77ee_1000 ^ seed);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: OracleEventQueue<u64> = OracleEventQueue::new();
        let mut next_event = 0u64;
        let steps = 50 + rng.index(150);
        for step in 0..steps {
            match rng.index(4) {
                // Burst of schedules, deliberately heavy on ties.
                0 | 1 => {
                    let base = wheel.now().as_micros();
                    let burst = 1 + rng.index(8);
                    // Occasionally jump far ahead to exercise high wheel
                    // levels and the overflow list (> 2^48 µs).
                    let spread = match rng.index(6) {
                        0 => 1u64 << 50,
                        1 => 1u64 << 30,
                        _ => 1000,
                    };
                    let at = SimTime(base + rng.below(spread));
                    for _ in 0..burst {
                        wheel.schedule(at, next_event);
                        heap.schedule(at, next_event);
                        next_event += 1;
                    }
                }
                // Pop and compare.
                2 => {
                    assert_eq!(
                        wheel.pop(),
                        heap.pop(),
                        "seed {seed} step {step}: pop diverged"
                    );
                }
                // Pop, then re-schedule at the popped instant (the
                // same-instant-follow-up pattern the hybrid driver uses).
                _ => {
                    let w = wheel.pop();
                    let h = heap.pop();
                    assert_eq!(w, h, "seed {seed} step {step}: pop diverged");
                    if let Some((t, _)) = w {
                        wheel.schedule(t, next_event);
                        heap.schedule(t, next_event);
                        next_event += 1;
                    }
                }
            }
            assert_eq!(wheel.peek_time(), heap.peek_time());
            assert_eq!(wheel.pending(), heap.pending());
        }
        // Drain both completely: the tails must match too.
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "seed {seed}: drain diverged");
            if w.is_none() {
                break;
            }
        }
    }
}

/// Dense same-instant bursts — the schedule shape the churn-burst login
/// waves produce — must drain FIFO and bit-identical to the heap oracle.
/// This is the regression test for the old `Vec::remove(0)` level-0 drain
/// (O(n²) across a tie burst) and the cached overflow minimum: pushes while
/// half-drained, overflow ties past the 2^48 µs horizon, and repeated
/// peeks against a drained wheel all hit the fixed paths.
#[test]
fn timing_wheel_dense_tie_bursts_match_heap_oracle() {
    for seed in 0..50u64 {
        let mut rng = DetRng::seeded(0xde25_e000 ^ seed);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: OracleEventQueue<u64> = OracleEventQueue::new();
        let mut next_event = 0u64;
        for wave in 0..4u64 {
            // One massive tie burst per wave, optionally past the horizon so
            // the whole burst lands in (and promotes out of) overflow.
            let base = wheel.now().as_micros();
            let at = SimTime(match rng.index(3) {
                0 => base + (1u64 << 49) + rng.below(4),
                _ => base + rng.below(3),
            });
            let burst = 500 + rng.index(1500);
            for _ in 0..burst {
                wheel.schedule(at, next_event);
                heap.schedule(at, next_event);
                next_event += 1;
            }
            // Drain roughly half, interleaving same-instant re-schedules so
            // the slot refills from the back while popping from the front.
            for _ in 0..burst / 2 {
                assert_eq!(wheel.peek_time(), heap.peek_time());
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "seed {seed} wave {wave}: pop diverged");
                if let Some((t, _)) = w {
                    if rng.chance(0.2) {
                        wheel.schedule(t, next_event);
                        heap.schedule(t, next_event);
                        next_event += 1;
                    }
                }
            }
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "seed {seed}: drain diverged");
            assert_eq!(wheel.peek_time(), heap.peek_time());
            if w.is_none() {
                break;
            }
        }
    }
}

/// `recompute_dirty()` is an optimization, not an approximation: across
/// 200 seeded mutation sequences (flow add/remove, ceiling changes, node
/// capacity changes) the incremental path must produce *bit-identical*
/// rates, utilizations, and rate checksums to the full `recompute()`
/// oracle after every single mutation.
#[test]
fn recompute_dirty_matches_full_oracle_across_200_seeds() {
    for seed in 0..200u64 {
        let mut rng = DetRng::seeded(0xd127_0000 ^ seed);
        let mut inc = FlowNet::new();
        let mut full = FlowNet::new();
        let n_nodes = 4 + rng.index(12);
        let mut nodes_inc: Vec<NodeId> = Vec::new();
        let mut nodes_full: Vec<NodeId> = Vec::new();
        for _ in 0..n_nodes {
            let up = Bandwidth::from_mbps(rng.range_f64(0.1, 50.0));
            let down = Bandwidth::from_mbps(rng.range_f64(0.5, 200.0));
            nodes_inc.push(inc.add_node(up, down));
            nodes_full.push(full.add_node(up, down));
        }
        let mut live = Vec::new();
        let steps = 30 + rng.index(40);
        for step in 0..steps {
            match rng.index(5) {
                // Bias toward adds so components grow, merge, and churn.
                0 | 1 => {
                    let s = rng.index(n_nodes);
                    let mut d = rng.index(n_nodes);
                    while d == s {
                        d = rng.index(n_nodes);
                    }
                    let ceil = rng
                        .chance(0.4)
                        .then(|| Bandwidth::from_mbps(rng.range_f64(0.05, 10.0)));
                    live.push((
                        inc.add_flow(nodes_inc[s], nodes_inc[d], ceil),
                        full.add_flow(nodes_full[s], nodes_full[d], ceil),
                    ));
                }
                2 if !live.is_empty() => {
                    let k = rng.index(live.len());
                    let (fi, ff) = live.swap_remove(k);
                    inc.remove_flow(fi);
                    full.remove_flow(ff);
                }
                3 if !live.is_empty() => {
                    let k = rng.index(live.len());
                    let ceil = rng
                        .chance(0.7)
                        .then(|| Bandwidth::from_mbps(rng.range_f64(0.05, 10.0)));
                    inc.set_flow_ceil(live[k].0, ceil);
                    full.set_flow_ceil(live[k].1, ceil);
                }
                4 => {
                    let k = rng.index(n_nodes);
                    let up = Bandwidth::from_mbps(rng.range_f64(0.1, 50.0));
                    let down = Bandwidth::from_mbps(rng.range_f64(0.5, 200.0));
                    inc.set_node_caps(nodes_inc[k], up, down);
                    full.set_node_caps(nodes_full[k], up, down);
                }
                _ => {}
            }
            inc.recompute_dirty();
            full.recompute();
            assert_eq!(
                inc.rate_checksum(),
                full.rate_checksum(),
                "seed {seed} step {step}: checksum diverged"
            );
            for (fi, ff) in &live {
                assert_eq!(
                    inc.rate(*fi).bytes_per_sec().to_bits(),
                    full.rate(*ff).bytes_per_sec().to_bits(),
                    "seed {seed} step {step}: per-flow rate diverged"
                );
            }
            for (a, b) in nodes_inc.iter().zip(&nodes_full) {
                assert_eq!(
                    inc.upstream_utilization(*a).bytes_per_sec().to_bits(),
                    full.upstream_utilization(*b).bytes_per_sec().to_bits(),
                    "seed {seed} step {step}: upstream utilization diverged"
                );
                assert_eq!(
                    inc.downstream_utilization(*a).bytes_per_sec().to_bits(),
                    full.downstream_utilization(*b).bytes_per_sec().to_bits(),
                    "seed {seed} step {step}: downstream utilization diverged"
                );
            }
        }
    }
}
