//! The sharded runner's parallel mode is an optimization, not an
//! approximation: across randomized programs — bursty local schedules,
//! cross-shard fan-out at minimum lookahead, same-instant deliveries from
//! multiple sources, idle shards — the parallel execution must produce
//! per-shard event logs and stats bit-identical to the sequential oracle,
//! regardless of thread interleaving.

use netsession_core::rng::DetRng;
use netsession_core::time::{SimDuration, SimTime};
use netsession_sim::shard::{Outbox, ShardRunner, ShardWorker};

/// A worker whose behaviour is a deterministic function of (shard, event):
/// content-keyed RNG, no draw-order dependence — the pattern real shard
/// programs must follow.
struct ChaosWorker {
    shard: usize,
    program_seed: u64,
    log: Vec<(u64, u64)>,
}

impl ShardWorker for ChaosWorker {
    type Event = u64;

    fn handle(&mut self, at: SimTime, token: u64, out: &mut Outbox<u64>) {
        self.log.push((at.as_micros(), token));
        // Key the RNG on content, not on call order.
        let mut rng = DetRng::seeded(
            self.program_seed ^ (self.shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ token,
        );
        // Tokens carry a budget in their low bits; spend it on follow-ups.
        let budget = token & 0xf;
        if budget == 0 {
            return;
        }
        let n = 1 + rng.index(3);
        for i in 0..n {
            let child = (token ^ rng.below(1 << 40) << 8) & !0xf | (budget - 1);
            if rng.chance(0.4) && out.n_shards() > 1 {
                // Cross send at (or just past) minimum lookahead, with
                // deliberate timestamp collisions across sources.
                let dst = rng.index(out.n_shards());
                let slack = if rng.chance(0.5) { 0 } else { rng.below(3) };
                out.send(dst, out.window_end() + SimDuration(slack), child);
            } else {
                let dt = rng.below(20_000_000);
                out.schedule(at + SimDuration(dt + i as u64), child);
            }
        }
    }
}

/// Per-shard `(time, token)` logs plus `(events, cross_recv)` stats.
type RunOutput = (Vec<Vec<(u64, u64)>>, Vec<(u64, u64)>);

fn run(seed: u64, n_shards: usize, parallel: bool) -> RunOutput {
    let workers = (0..n_shards)
        .map(|k| ChaosWorker {
            shard: k,
            program_seed: seed,
            log: Vec::new(),
        })
        .collect();
    let mut runner = ShardRunner::new(workers, SimDuration::from_secs(10));
    let mut rng = DetRng::seeded(0x5eed_caf3 ^ seed);
    let n_seeds = 1 + rng.index(6);
    for _ in 0..n_seeds {
        let shard = rng.index(n_shards);
        let at = SimTime(rng.below(30_000_000));
        // Budget ≤ 6 keeps the branching program finite.
        let token = (rng.below(1 << 40) << 8) | rng.below(7);
        runner.seed(shard, at, token);
    }
    if parallel {
        runner.run_parallel();
    } else {
        runner.run_sequential();
    }
    let stats = runner
        .stats()
        .iter()
        .map(|s| (s.events, s.cross_recv))
        .collect();
    (
        runner.into_workers().into_iter().map(|w| w.log).collect(),
        stats,
    )
}

#[test]
fn parallel_matches_sequential_oracle_across_60_seeds() {
    for seed in 0..60u64 {
        let n_shards = 2 + (seed % 5) as usize;
        let sequential = run(seed, n_shards, false);
        let parallel = run(seed, n_shards, true);
        assert_eq!(
            sequential, parallel,
            "seed {seed} ({n_shards} shards): parallel diverged from oracle"
        );
        assert!(
            sequential.0.iter().any(|l| !l.is_empty()),
            "seed {seed}: degenerate run"
        );
    }
}

/// Shard count must not change *what happens*, only *where*: the union of
/// all per-shard logs is invariant when every shard's program is keyed by
/// content. (Weaker than byte-identity across K — cross-send targets here
/// depend on `n_shards` — so this checks the single-shard case embeds.)
#[test]
fn single_shard_run_is_the_sequential_program() {
    for seed in 0..10u64 {
        let a = run(seed, 1, false);
        let b = run(seed, 1, true);
        assert_eq!(a, b, "seed {seed}: 1-shard parallel must be trivial");
    }
}
