//! Scenario assembly: build the world, the edge tier, and the control
//! plane from a [`ScenarioConfig`].

use crate::config::ScenarioConfig;
use netsession_control::plane::{ControlPlane, PlaneConfig};
use netsession_control::selection::SelectionPolicy;
use netsession_core::rng::DetRng;
use netsession_edge::accounting::AccountingLedger;
use netsession_edge::auth::EdgeAuth;
use netsession_edge::server::EdgeServer;
use netsession_edge::store::ContentStore;
use netsession_world::catalog::Catalog;
use netsession_world::geo::Region;
use netsession_world::population::Population;
use netsession_world::workload::Workload;
use std::sync::Arc;

/// The assembled static scenario (pre-simulation).
pub struct Scenario {
    /// The configuration it was built from.
    pub config: ScenarioConfig,
    /// The peer population and AS universe.
    pub population: Population,
    /// The object catalog.
    pub catalog: Catalog,
    /// The month's requests.
    pub workload: Workload,
    /// The shared content store (all objects published).
    pub store: Arc<ContentStore>,
    /// One edge server per network region.
    pub edges: Vec<EdgeServer>,
    /// The shared accounting ledger.
    pub ledger: Arc<AccountingLedger>,
    /// The edge auth secret holder.
    pub auth: EdgeAuth,
    /// The control plane (one CN/DN per Table-2 region).
    pub plane: ControlPlane,
}

impl Scenario {
    /// Build everything deterministically from the config.
    pub fn build(config: ScenarioConfig) -> Scenario {
        config.validate();
        let mut rng = DetRng::seeded(config.seed);
        let mut pop_rng = rng.split(0x706f70);
        let mut cat_rng = rng.split(0x636174);
        let mut wl_rng = rng.split(0x776f726b);

        let mut population = Population::generate(&config.population, &mut pop_rng);
        if let Some(frac) = config.enable_fraction_override {
            let mut ov_rng = rng.split(0x6f766572);
            for p in &mut population.peers {
                p.uploads_enabled = ov_rng.chance(frac);
            }
        }
        let catalog = Catalog::generate(config.objects, &mut cat_rng);
        let workload = Workload::generate(&config.workload, &population, &catalog, &mut wl_rng);

        // Publish every object on the shared store.
        let store = Arc::new(ContentStore::new());
        for obj in catalog.objects() {
            let mut policy = obj.policy.clone();
            if !config.edge_backstop {
                // Pure-p2p ablation still authorizes via the edge (it is
                // the trust root) but the simulation will not open edge
                // flows; the policy is unchanged.
                policy = obj.policy.clone();
            }
            if config.per_object_upload_cap.is_none() {
                policy.per_peer_upload_cap = None;
            } else if policy.p2p_enabled {
                policy.per_peer_upload_cap = config.per_object_upload_cap;
            }
            store.publish_synthetic(obj.id, obj.cp, obj.size, policy);
        }

        let auth = EdgeAuth::from_seed(config.seed ^ 0x65646765);
        let ledger = Arc::new(AccountingLedger::new());
        let regions = Region::ALL.len() as u32;
        let edges = (0..regions)
            .map(|r| EdgeServer::new(r, store.clone(), auth.clone(), ledger.clone()))
            .collect();

        let plane = ControlPlane::new(
            &PlaneConfig {
                regions,
                selection: SelectionPolicy {
                    max_peers: config.peers_returned,
                    locality_aware: config.locality_aware,
                    ..SelectionPolicy::default()
                },
                ..PlaneConfig::default()
            },
            auth.clone(),
        );

        Scenario {
            config,
            population,
            catalog,
            workload,
            store,
            edges,
            ledger,
            auth,
            plane,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_publishes_catalog_and_regions() {
        let s = Scenario::build(ScenarioConfig::tiny());
        assert_eq!(s.store.len(), s.catalog.len());
        assert_eq!(s.edges.len(), Region::ALL.len());
        assert_eq!(s.plane.regions(), Region::ALL.len() as u32);
        assert_eq!(s.population.len(), s.config.population.peers);
        assert_eq!(s.workload.len(), s.config.workload.downloads);
    }

    #[test]
    fn enable_override_applies() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.enable_fraction_override = Some(1.0);
        let s = Scenario::build(cfg);
        assert!(s.population.peers.iter().all(|p| p.uploads_enabled));
        let mut cfg = ScenarioConfig::tiny();
        cfg.enable_fraction_override = Some(0.0);
        let s = Scenario::build(cfg);
        assert!(s.population.peers.iter().all(|p| !p.uploads_enabled));
    }

    #[test]
    fn upload_cap_ablation_removes_caps() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.per_object_upload_cap = None;
        let s = Scenario::build(cfg);
        for obj in s.catalog.objects().iter().take(200) {
            let stored = s.store.get(obj.id).unwrap();
            assert_eq!(stored.policy.per_peer_upload_cap, None);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = Scenario::build(ScenarioConfig::tiny());
        let b = Scenario::build(ScenarioConfig::tiny());
        assert_eq!(a.workload.requests, b.workload.requests);
        for (x, y) in a.population.peers.iter().zip(&b.population.peers) {
            assert_eq!(x.guid, y.guid);
        }
    }
}
