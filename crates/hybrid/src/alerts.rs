//! The §3.8 alert policy for the simulated deployment.
//!
//! One declarative rule set, evaluated two ways: the hybrid driver runs
//! it over *virtual* time each observation interval (so a chaos campaign
//! reports deterministic time-to-detection numbers), and the live
//! `monitor_server` runs the same [`AlertEngine`] machinery over
//! wall-clock scrapes. Rules watch the `hybrid.fault.*` counters the
//! fault-injection subsystem maintains; every counter is either covered
//! by a rule here or listed in [`ALLOWLIST`] with a reason —
//! `scripts/check.sh` greps the source to keep that exhaustive.
//!
//! Rule taxonomy:
//!
//! - **Fault-class rules** (one per injectable [`FaultKind`]): fire on
//!   any injection of that class within the trailing hour. These are what
//!   the chaos bench's time-to-detection table is measured against.
//! - **Symptom rules**: fire on the *observable damage* — mass control
//!   disconnects, cut backstop flows, degraded edge-only downloads —
//!   so an alert still raises when the cause counter is missing.
//!
//! A fault-free run never creates any `hybrid.fault.*` counter (they are
//! lazily registered at first increment), so the zero-fault baseline is
//! structurally incapable of false positives.
//!
//! [`FaultKind`]: crate::config::FaultKind

use netsession_obs::{AlertEvent, AlertRule, MergedSeries, RuleKind};

/// Observation window for every rate rule: one trailing hour of virtual
/// (or wall) time. Detection latency is bounded by the driver's
/// observation cadence, not by this window; the window only controls how
/// long an alert stays raised after the burst ends.
pub const RULE_WINDOW_US: u64 = 3_600_000_000;

/// Fault-class rule names, paired with the chaos campaign class each one
/// detects: `(class label, rule name, watched counter)`.
pub const FAULT_CLASS_RULES: [(&str, &str, &str); 4] = [
    ("cn_crash", "control-crash", "hybrid.fault.cn_crashes"),
    ("dn_wipe", "directory-wipe", "hybrid.fault.dn_wipes"),
    ("edge_outage", "edge-outage", "hybrid.fault.edge_outages"),
    ("churn_burst", "churn-burst", "hybrid.fault.churn_bursts"),
];

/// Symptom rules: `(rule name, watched counter)`.
pub const SYMPTOM_RULES: [(&str, &str); 5] = [
    ("fault-injected", "hybrid.fault.injected"),
    ("mass-disconnect", "hybrid.fault.peers_disconnected"),
    ("churn-offline", "hybrid.fault.churn_offline"),
    ("backstop-cut", "hybrid.fault.edge_flows_cut"),
    ("degraded-downloads", "hybrid.fault.edge_only_downloads"),
];

/// `hybrid.fault.*` counters deliberately *without* an alert rule: they
/// count the recovery machinery doing its job (readmission pacing,
/// RE-ADD fate-sharing, backstop re-attachment). Alerting on recovery
/// would page on the cure, not the disease.
pub const ALLOWLIST: [&str; 5] = [
    "hybrid.fault.readmissions",
    "hybrid.fault.reregistered_versions",
    "hybrid.fault.readds",
    "hybrid.fault.readd_versions",
    "hybrid.fault.edge_flows_restored",
];

/// The standard rule set the driver evaluates over virtual time. Every
/// rule is `RateAbove {{ delta: 1 }}` over [`RULE_WINDOW_US`]: a single
/// counter increment within the trailing hour raises, and the alert
/// clears one window after the activity stops.
pub fn standard_rules() -> Vec<AlertRule> {
    FAULT_CLASS_RULES
        .iter()
        .map(|(_, rule, metric)| (*rule, *metric))
        .chain(SYMPTOM_RULES)
        .map(|(rule, metric)| {
            AlertRule::new(
                rule,
                metric,
                RuleKind::RateAbove { delta: 1 },
                RULE_WINDOW_US,
            )
        })
        .collect()
}

/// One alert transition from replaying the standard rules over a merged
/// time series: the scaled runner's post-hoc equivalent of the hybrid
/// driver's in-loop observation. `region` is `None` for the fleet-wide
/// pass (all regions summed) and the region label otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesDetection {
    /// Region the engine was scoped to, `None` = fleet-wide.
    pub region: Option<String>,
    /// The raise/clear transition, timestamped in virtual micros (the
    /// close of the window whose observation transitioned the rule).
    pub event: AlertEvent,
}

/// Replay [`standard_rules`] over a merged time series in virtual time:
/// one fleet-wide engine over the region-summed series, then one engine
/// per region. Counter windows are re-accumulated into the monotone
/// cumulative values the [`netsession_obs::AlertEngine`] expects, so its
/// reset/rate semantics match the live scrape path exactly. Output is
/// deterministic: fleet-wide first, then regions in series order, each
/// engine's log in time order.
pub fn replay_standard_alerts(series: &MergedSeries) -> Vec<SeriesDetection> {
    let mut out = Vec::new();
    for event in series.replay(standard_rules(), None) {
        out.push(SeriesDetection {
            region: None,
            event,
        });
    }
    for (g, label) in series.groups.iter().enumerate() {
        for event in series.replay(standard_rules(), Some(g)) {
            out.push(SeriesDetection {
                region: Some(label.clone()),
                event,
            });
        }
    }
    out
}

/// Which fault classes a detection log raised, joined through
/// [`FAULT_CLASS_RULES`]: returns the class labels (in rule-table order)
/// whose class rule raised at least once anywhere. The scaled acceptance
/// gate asserts this covers all four classes.
pub fn detected_classes(detections: &[SeriesDetection]) -> Vec<&'static str> {
    FAULT_CLASS_RULES
        .iter()
        .filter(|(_, rule, _)| {
            detections
                .iter()
                .any(|d| d.event.raised && d.event.rule == *rule)
        })
        .map(|(class, _, _)| *class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rules_are_well_formed_and_disjoint_from_the_allowlist() {
        let rules = standard_rules();
        assert_eq!(rules.len(), FAULT_CLASS_RULES.len() + SYMPTOM_RULES.len());
        let mut names = BTreeSet::new();
        let mut metrics = BTreeSet::new();
        for r in &rules {
            assert!(names.insert(r.name.clone()), "duplicate rule {}", r.name);
            assert!(
                metrics.insert(r.metric.clone()),
                "two rules watch {}",
                r.metric
            );
            assert!(r.metric.starts_with("hybrid.fault."), "{}", r.metric);
            assert!(r.window_us > 0);
        }
        for allowed in ALLOWLIST {
            assert!(
                !metrics.contains(allowed),
                "{allowed} is both ruled and allowlisted"
            );
        }
    }

    #[test]
    fn class_rules_cover_every_injectable_fault_kind() {
        // One rule per FaultKind variant; the chaos bench joins the TTD
        // table on these labels.
        let classes: BTreeSet<&str> = FAULT_CLASS_RULES.iter().map(|(c, _, _)| *c).collect();
        for class in ["cn_crash", "dn_wipe", "edge_outage", "churn_burst"] {
            assert!(classes.contains(class), "no detection rule for {class}");
        }
    }
}
