//! # netsession-hybrid
//!
//! The assembled hybrid CDN: this crate wires the synthetic world
//! (`netsession-world`), the edge tier (`netsession-edge`), the control
//! plane (`netsession-control`), and the fluid network substrate
//! (`netsession-sim`) into one deterministic month-long simulation that
//! produces production-style logs (`netsession-logs`).
//!
//! * [`config::ScenarioConfig`] — one struct fully describing a run,
//!   including every ablation switch from DESIGN.md (locality off, edge
//!   backstop off, upload caps off, enable-fraction sweeps, session-mode
//!   clients).
//! * [`setup::Scenario`] — the deterministic assembly step.
//! * [`sim::HybridSim`] — the event loop: logins on diurnal schedules,
//!   request arrivals, control-plane peer selection, NAT-filtered
//!   connection establishment, max-min fair fluid transfers, user
//!   abandonment, caching and DN registration, usage reporting.
//! * [`identity::IdentityState`] — live secondary-GUID chains with
//!   rollback / backup-restore / re-imaging anomalies (§6.2).
//!
//! ```no_run
//! use netsession_hybrid::{HybridSim, ScenarioConfig};
//! let out = HybridSim::run_config(ScenarioConfig::default());
//! println!("{} downloads logged", out.dataset.downloads.len());
//! ```

pub mod alerts;
pub mod config;
pub mod identity;
pub mod scaled;
pub mod setup;
pub mod sim;

pub use config::{FaultEvent, FaultKind, FaultSchedule, ScenarioConfig};
pub use scaled::{
    run_scaled, run_scaled_profiled, RegionReport, ScaledAlert, ScaledConfig, ScaledOutput,
    MAX_SHARDS, TS_INTERVAL_US, TS_METRICS,
};
pub use setup::Scenario;
pub use sim::{HybridSim, RunStats, SimOutput};
