//! Scenario configuration.
//!
//! One [`ScenarioConfig`] fully determines a simulated month (given the
//! seed): the population and catalog scale, the control-plane policy, and
//! the ablation switches the DESIGN.md experiment index calls out.

use netsession_core::policy::TransferConfig;
use netsession_core::time::TRACE_MONTH;
use netsession_world::geo::Region;
use netsession_world::population::PopulationConfig;
use netsession_world::workload::WorkloadConfig;

/// One kind of injected infrastructure failure (§3.8 robustness scenarios).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A region's Connection Node crashes: every control connection in the
    /// region drops and the dropped peers reconnect through the
    /// rate-limited readmission pacing ("reconnections are rate-limited to
    /// ensure a smooth recovery"). While disconnected, a peer cannot query
    /// for sources and downloads degrade to edge-only.
    CnCrash {
        /// Region index (dense [`Region::ALL`] order).
        region: u32,
    },
    /// A region's Directory Node loses its soft state. Connected peers are
    /// asked to RE-ADD their cached content; responses are paced through
    /// the same recovery limiter (fate-sharing, §3.8).
    DnWipe {
        /// Region index.
        region: u32,
    },
    /// The region's edge servers go dark for a window: active backstop
    /// flows are cut and new downloads in the region run peer-only until
    /// the outage ends, when backstops re-attach.
    EdgeOutage {
        /// Region index.
        region: u32,
        /// Outage duration in seconds.
        secs: u64,
    },
    /// A burst of abrupt peer departures: each online peer without an
    /// active download goes offline with this probability (upload flows it
    /// sourced are dropped, stressing re-query and edge fallback).
    ChurnBurst {
        /// Departure probability in `(0, 1]`.
        fraction: f64,
    },
}

/// A scheduled fault: *what* fails and *when*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Hours from the start of the simulated month.
    pub at_hours: u64,
    /// The failure to inject.
    pub kind: FaultKind,
}

/// Deterministic fault-injection schedule. Part of [`ScenarioConfig`], so
/// a chaos campaign is replayable from `(seed, schedule)` alone. Empty by
/// default — a schedule-free run is byte-identical to one before this
/// subsystem existed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// Faults to inject, in any order (the event queue sorts by time).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scaled runner's standard chaos campaign: all four fault
    /// classes spread over a `days`-long run — one [`FaultKind::CnCrash`],
    /// [`FaultKind::DnWipe`], and two-hour [`FaultKind::EdgeOutage`] per
    /// region (nine regions each, in dense region order), plus a heavy
    /// and a light fleet-wide [`FaultKind::ChurnBurst`]. Injection times
    /// divide the horizon into 40 even slots, so the same campaign shape
    /// scales from a smoke run to the paper-scale month. Deterministic:
    /// a pure function of `days`.
    pub fn scaled_campaign(days: u64) -> FaultSchedule {
        let horizon = days * 24;
        let h = |slot: u64| (horizon * (slot + 1) / 40).max(1);
        let mut events = Vec::new();
        for region in 0..9u32 {
            events.push(FaultEvent {
                at_hours: h(region as u64),
                kind: FaultKind::CnCrash { region },
            });
            events.push(FaultEvent {
                at_hours: h(9 + region as u64),
                kind: FaultKind::DnWipe { region },
            });
            events.push(FaultEvent {
                at_hours: h(18 + region as u64),
                kind: FaultKind::EdgeOutage {
                    region,
                    secs: 7_200,
                },
            });
        }
        events.push(FaultEvent {
            at_hours: h(28),
            kind: FaultKind::ChurnBurst { fraction: 0.3 },
        });
        events.push(FaultEvent {
            at_hours: h(33),
            kind: FaultKind::ChurnBurst { fraction: 0.15 },
        });
        FaultSchedule { events }
    }
}

/// Observability knobs. These configure what gets *recorded* — event
/// ring depth and download-trace sampling — and, by the passive-design
/// rule, can never change simulated behaviour: a same-seed run produces
/// identical experiment output at any setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Bound on the structured-event ring the metrics registry keeps
    /// (0 disables event recording; details are then never formatted).
    pub event_ring_capacity: usize,
    /// Trace one download in this many (1 = trace everything). Sampling
    /// is deterministic — the k-th download start is sampled iff
    /// `(k - 1) % trace_sample_every == 0`.
    pub trace_sample_every: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            event_ring_capacity: netsession_obs::DEFAULT_EVENT_CAPACITY,
            // At the default 40 k-download scale this keeps ~40 traced
            // downloads per run — rich enough to drill into, small
            // enough that committed `.trace.json` artifacts stay well
            // under the 1 MiB repo lint.
            trace_sample_every: 1024,
        }
    }
}

/// Everything one simulation run needs.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Population parameters.
    pub population: PopulationConfig,
    /// Catalog size (objects).
    pub objects: usize,
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Client transfer configuration.
    pub transfer: TransferConfig,
    /// Peers the control plane returns per query (paper default 40).
    pub peers_returned: usize,
    /// Locality-aware selection (ablation A1 sets this false).
    pub locality_aware: bool,
    /// Edge backstop available (ablation A2 sets this false: pure p2p).
    pub edge_backstop: bool,
    /// Per-object upload cap (ablation A3 sets this `None`).
    pub per_object_upload_cap: Option<u32>,
    /// Override the uploads-enabled fraction: `Some(f)` forces every peer
    /// to enable uploads with probability `f` regardless of its provider
    /// default (ablation A5). `None` keeps the Table-4 defaults.
    pub enable_fraction_override: Option<f64>,
    /// Probability a peer logs in on a day it is scheduled to be online
    /// (§4.2: 8.75–10.9 M of ~26 M GUIDs connect on a typical day).
    pub daily_login_prob: f64,
    /// Fraction of each day a *session-mode* client is available compared
    /// to the background-mode client (ablation A6 models launch-on-demand
    /// clients by shrinking availability to this factor; 1.0 = §3.4's
    /// persistent background behaviour).
    pub session_mode_factor: f64,
    /// If set, all control-plane DNs are restarted at this day of the
    /// month (§3.8: "when a new CN/DN software version is released, all
    /// CNs and DNs are restarted in a short timeframe, and this does not
    /// negatively affect the service"); online peers repopulate the
    /// directories via RE-ADD.
    pub control_restart_day: Option<u64>,
    /// Scheduled infrastructure faults (§3.8 chaos campaign). Empty by
    /// default.
    pub faults: FaultSchedule,
    /// Observability configuration (event-ring depth, trace sampling).
    pub obs: ObsConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 20121001,
            population: PopulationConfig {
                peers: 30_000,
                ases: 600,
                ..PopulationConfig::default()
            },
            objects: 4_000,
            workload: WorkloadConfig {
                downloads: 40_000,
                ..WorkloadConfig::default()
            },
            transfer: TransferConfig::default(),
            peers_returned: 40,
            locality_aware: true,
            edge_backstop: true,
            per_object_upload_cap: Some(netsession_core::policy::DEFAULT_PER_OBJECT_UPLOAD_CAP),
            enable_fraction_override: None,
            daily_login_prob: 0.4,
            session_mode_factor: 1.0,
            control_restart_day: None,
            faults: FaultSchedule::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl ScenarioConfig {
    /// Sanity-check the configuration. Called by `Scenario::build`;
    /// asserts on values that would silently disable whole mechanisms
    /// (e.g. `sufficient_peer_connections == 0` once made the requery
    /// threshold collapse to zero under integer division).
    pub fn validate(&self) {
        assert!(
            self.transfer.sufficient_peer_connections >= 1,
            "transfer.sufficient_peer_connections must be >= 1 \
             (0 would disable re-queries entirely)"
        );
        assert!(
            self.transfer.max_download_connections >= 1,
            "transfer.max_download_connections must be >= 1"
        );
        assert!(
            self.population.peers > 0 && self.objects > 0,
            "population and catalog must be non-empty"
        );
        assert!(
            (0.0..=1.0).contains(&self.daily_login_prob),
            "daily_login_prob must be a probability"
        );
        assert!(
            self.obs.trace_sample_every >= 1,
            "obs.trace_sample_every must be >= 1 (sample every Nth download; \
             1 traces everything — 0 would divide by zero, not disable)"
        );
        let regions = Region::ALL.len() as u32;
        let month_hours = TRACE_MONTH.as_micros() / 3_600_000_000;
        for (i, f) in self.faults.events.iter().enumerate() {
            assert!(
                f.at_hours < month_hours,
                "faults.events[{i}]: at_hours {} is past the simulated month \
                 ({month_hours} h) — the fault would never fire",
                f.at_hours
            );
            match f.kind {
                FaultKind::CnCrash { region }
                | FaultKind::DnWipe { region }
                | FaultKind::EdgeOutage { region, .. } => {
                    assert!(
                        region < regions,
                        "faults.events[{i}]: region {region} out of range \
                         (deployment has {regions} regions)"
                    );
                }
                FaultKind::ChurnBurst { .. } => {}
            }
            if let FaultKind::EdgeOutage { secs, .. } = f.kind {
                assert!(
                    secs > 0,
                    "faults.events[{i}]: zero-length edge outage would be a no-op"
                );
            }
            if let FaultKind::ChurnBurst { fraction } = f.kind {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "faults.events[{i}]: churn fraction must be in (0, 1], got {fraction}"
                );
            }
        }
    }

    /// A small configuration for fast tests.
    pub fn tiny() -> Self {
        ScenarioConfig {
            population: PopulationConfig {
                peers: 1_500,
                ases: 120,
                ..PopulationConfig::default()
            },
            objects: 300,
            workload: WorkloadConfig {
                downloads: 1_200,
                ..WorkloadConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shaped() {
        let c = ScenarioConfig::default();
        assert_eq!(c.peers_returned, 40);
        assert!(c.locality_aware && c.edge_backstop);
        assert!(c.per_object_upload_cap.is_some());
        assert!(c.enable_fraction_override.is_none());
        assert!((0.3..0.5).contains(&c.daily_login_prob));
    }

    #[test]
    fn obs_defaults_are_bounded() {
        let c = ScenarioConfig::default();
        assert!(c.obs.event_ring_capacity >= 1);
        assert!(c.obs.trace_sample_every >= 1);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "trace_sample_every")]
    fn zero_sampling_rate_is_rejected() {
        let mut c = ScenarioConfig::tiny();
        c.obs.trace_sample_every = 0;
        c.validate();
    }

    #[test]
    fn empty_fault_schedule_is_default() {
        let c = ScenarioConfig::default();
        assert!(c.faults.is_empty());
        c.validate();
    }

    #[test]
    fn valid_fault_schedule_passes() {
        let mut c = ScenarioConfig::tiny();
        c.faults.events = vec![
            FaultEvent {
                at_hours: 100,
                kind: FaultKind::CnCrash { region: 0 },
            },
            FaultEvent {
                at_hours: 200,
                kind: FaultKind::DnWipe { region: 8 },
            },
            FaultEvent {
                at_hours: 300,
                kind: FaultKind::EdgeOutage {
                    region: 3,
                    secs: 3_600,
                },
            },
            FaultEvent {
                at_hours: 400,
                kind: FaultKind::ChurnBurst { fraction: 0.25 },
            },
        ];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "region 9 out of range")]
    fn fault_region_out_of_range_is_rejected() {
        let mut c = ScenarioConfig::tiny();
        c.faults.events = vec![FaultEvent {
            at_hours: 1,
            kind: FaultKind::CnCrash { region: 9 },
        }];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "past the simulated month")]
    fn fault_after_month_end_is_rejected() {
        let mut c = ScenarioConfig::tiny();
        c.faults.events = vec![FaultEvent {
            at_hours: 744,
            kind: FaultKind::ChurnBurst { fraction: 0.1 },
        }];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "churn fraction")]
    fn churn_fraction_over_one_is_rejected() {
        let mut c = ScenarioConfig::tiny();
        c.faults.events = vec![FaultEvent {
            at_hours: 1,
            kind: FaultKind::ChurnBurst { fraction: 1.5 },
        }];
        c.validate();
    }

    #[test]
    fn tiny_is_smaller() {
        let t = ScenarioConfig::tiny();
        let d = ScenarioConfig::default();
        assert!(t.population.peers < d.population.peers);
        assert!(t.workload.downloads < d.workload.downloads);
    }
}
