//! Million-peer scaled simulation on the sharded runner.
//!
//! The full-fidelity [`crate::sim::HybridSim`] models every flow through
//! the max-min fair fluid network; that is the right tool at 30 k peers and
//! the wrong one at the paper's 25.9 M GUIDs. This module is the scale
//! path: a purpose-built month simulation that holds **struct-of-arrays**
//! peer state (8 bytes of mutable state per peer), derives every static
//! peer attribute procedurally (hash of the peer index — nothing
//! materialized), replaces the fluid solver with a closed-form regional
//! rate model, and **streams** every record into per-region
//! [`RecordSink`]s (running summaries + SHA-256 stream digests) instead of
//! accumulating `Vec`s. RAM is O(peers) with a ~10-byte constant, not
//! O(records).
//!
//! ## Sharding and determinism
//!
//! State is region-scoped: the nine Table-2 regions are assigned
//! contiguously to K shards (`shard = region * K / 9`), each peer belongs
//! to exactly one region, and a shard only ever touches its own regions'
//! state. The one cross-region interaction — a download sourcing bytes
//! from a remote-region uploader — becomes a cross-shard message delivered
//! at the next window barrier, which models the slow cross-continent
//! discovery path and satisfies the runner's lookahead contract for free.
//! All randomness is **content-keyed** (`DetRng::seeded(mix(seed, entity,
//! purpose))`), so no decision depends on global draw order. Together
//! these meet the [`netsession_sim::shard`] proof obligations, and the
//! parallel run is bit-identical to the sequential oracle — enforced by
//! `tests/scaled_determinism.rs` across 50+ seeded scenarios (faulty and
//! fault-free) and by the 2-shard gate in `scripts/check.sh`.

use crate::config::{FaultKind, FaultSchedule};
use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
use netsession_core::rng::DetRng;
use netsession_core::time::{SimDuration, SimTime};
use netsession_core::units::ByteCount;
use netsession_logs::dataset::DatasetSummary;
use netsession_logs::sink::{DigestSink, DigestTriple, RecordSink, StreamingSummary};
use netsession_logs::{DownloadOutcome, DownloadRecord, LoginRecord, TransferRecord};
use netsession_obs::profile::ShardProfiler;
use netsession_obs::MetricsRegistry;
use netsession_sim::shard::{Outbox, ShardRunner, ShardWorker};
use netsession_world::geo::Region;
use std::sync::Arc;

const DAY_US: u64 = 86_400_000_000;

/// Peer-population share per region, §4.2-calibrated ("most of the peers
/// are located in North America (27%) and Europe (35%)"), in
/// [`Region::ALL`] order, summing to 100.
const REGION_WEIGHTS: [u64; 9] = [15, 12, 12, 5, 8, 8, 35, 2, 3];

/// Region timezone offsets (hours from GMT) for the diurnal curve.
const REGION_TZ: [i32; 9] = [-5, -8, -4, 5, 8, 7, 1, 2, 10];

/// Regional median downstream access speed, Mbps (Fig 3 has strong
/// regional skew; these are coarse 2012-era medians).
const REGION_DOWN_MBPS: [f64; 9] = [10.0, 12.0, 4.0, 1.5, 6.0, 5.0, 9.0, 1.0, 8.0];

/// Hour-of-local-day activity weights (diurnal curve, §4.2 Fig 2 shape).
const DIURNAL: [f64; 24] = [
    0.45, 0.35, 0.30, 0.28, 0.30, 0.35, 0.45, 0.60, 0.75, 0.85, 0.90, 0.95, 1.00, 1.00, 0.95, 0.95,
    0.95, 1.00, 1.00, 1.00, 0.95, 0.85, 0.70, 0.55,
];

// Purpose tags for content-keyed RNG streams. Distinct constants keep the
// streams independent; the mixer multiplies by odd constants so (entity,
// purpose) pairs never collide by accident.
const P_LOGIN: u64 = 0x01;
const P_SESSION: u64 = 0x02;
const P_DOWNLOAD: u64 = 0x03;
const P_UPLOADERS: u64 = 0x04;
const P_CHURN: u64 = 0x05;
const P_STATIC: u64 = 0x06;

#[inline]
fn key_rng(seed: u64, a: u64, b: u64, purpose: u64) -> DetRng {
    DetRng::seeded(
        seed ^ a
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            .wrapping_add(purpose.wrapping_mul(0x1656_67b1_9e37_79f9)),
    )
}

#[inline]
fn hash64(seed: u64, x: u64, purpose: u64) -> u64 {
    // One splitmix64 round over the mixed key: cheap enough to call per
    // static attribute instead of materializing per-peer structs.
    let mut z = seed
        .wrapping_add(x.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(purpose.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration for one scaled run.
#[derive(Clone, Debug)]
pub struct ScaledConfig {
    /// Master seed.
    pub seed: u64,
    /// Installed population (the paper's 25.9 M GUIDs; bench target 1 M+).
    pub peers: u64,
    /// Catalog size.
    pub objects: u64,
    /// Simulated days (the trace month is 31).
    pub days: u64,
    /// Shard count, 1..=9 (regions are the finest partition key).
    pub shards: usize,
    /// Conservative window length (also the cross-region message latency
    /// floor).
    pub window: SimDuration,
    /// Probability an installed peer logs in on a given day (§4.2).
    pub daily_login_prob: f64,
    /// Mean downloads initiated per login session.
    pub downloads_per_login: f64,
    /// Probability a peer-sourced byte share comes from a remote region.
    pub cross_region_prob: f64,
    /// Deterministic fault schedule (shares [`crate::config::FaultSchedule`]
    /// with the full-fidelity sim).
    pub faults: FaultSchedule,
}

impl Default for ScaledConfig {
    fn default() -> Self {
        ScaledConfig {
            seed: 20121001,
            peers: 100_000,
            objects: 20_000,
            days: 31,
            shards: 4,
            window: SimDuration::from_secs(600),
            daily_login_prob: 0.4,
            downloads_per_login: 0.35,
            cross_region_prob: 0.15,
            faults: FaultSchedule::default(),
        }
    }
}

impl ScaledConfig {
    /// Seconds-scale configuration for gates and tests.
    pub fn smoke() -> Self {
        ScaledConfig {
            peers: 20_000,
            objects: 2_000,
            days: 7,
            shards: 2,
            ..ScaledConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.peers > 0 && self.peers <= u32::MAX as u64);
        assert!(self.objects > 0 && self.days > 0);
        assert!(
            (1..=Region::ALL.len()).contains(&self.shards),
            "shards must be 1..=9 (region is the partition key)"
        );
        assert!((0.0..=1.0).contains(&self.daily_login_prob));
        assert!((0.0..=1.0).contains(&self.cross_region_prob));
    }
}

/// Immutable world geometry shared by all shards: region → peer-index
/// blocks and region → shard assignment.
struct ScaledWorld {
    cfg: ScaledConfig,
    /// `region_starts[r]..region_starts[r+1]` is region r's peer block.
    region_starts: [u32; 10],
}

impl ScaledWorld {
    fn new(cfg: ScaledConfig) -> Self {
        cfg.validate();
        let total: u64 = REGION_WEIGHTS.iter().sum();
        let mut region_starts = [0u32; 10];
        let mut cum = 0u64;
        for (r, w) in REGION_WEIGHTS.iter().enumerate() {
            cum += w;
            region_starts[r + 1] = (cfg.peers * cum / total) as u32;
        }
        ScaledWorld { cfg, region_starts }
    }

    fn shard_of_region(&self, r: usize) -> usize {
        r * self.cfg.shards / Region::ALL.len()
    }

    fn regions_of_shard(&self, shard: usize) -> std::ops::Range<usize> {
        let mine: Vec<usize> = (0..Region::ALL.len())
            .filter(|&r| self.shard_of_region(r) == shard)
            .collect();
        match (mine.first(), mine.last()) {
            (Some(&a), Some(&b)) => a..b + 1,
            _ => 0..0,
        }
    }

    fn region_of_peer(&self, peer: u32) -> usize {
        self.region_starts[1..]
            .iter()
            .position(|&end| peer < end)
            .expect("peer in range")
    }

    fn region_peers(&self, r: usize) -> std::ops::Range<u32> {
        self.region_starts[r]..self.region_starts[r + 1]
    }

    // -- procedural static attributes ------------------------------------

    fn guid(&self, peer: u32) -> Guid {
        let lo = hash64(self.cfg.seed, peer as u64, P_STATIC);
        let hi = hash64(self.cfg.seed, peer as u64, P_STATIC + 16);
        Guid(((hi as u128) << 64) | lo as u128)
    }

    fn ip(&self, peer: u32, day: u64) -> u32 {
        // Stable home address with light mobility: a second address shows
        // up on ~1 day in 4 (laptops roam, §6.3).
        let home = 0x0a00_0000u32.wrapping_add(peer.wrapping_mul(7)) | 1;
        if hash64(self.cfg.seed, (peer as u64) << 9 | day, P_STATIC + 1).is_multiple_of(4) {
            home.wrapping_add(0x4000_0000)
        } else {
            home
        }
    }

    fn asn(&self, peer: u32) -> AsNumber {
        let r = self.region_of_peer(peer) as u64;
        AsNumber((1000 + r * 500 + hash64(self.cfg.seed, peer as u64, P_STATIC + 2) % 60) as u32)
    }

    fn country(&self, peer: u32) -> u16 {
        let r = self.region_of_peer(peer) as u64;
        (r * 24 + hash64(self.cfg.seed, peer as u64, P_STATIC + 3) % 12) as u16
    }

    fn lat_lon(&self, peer: u32) -> (f64, f64) {
        let h = hash64(self.cfg.seed, peer as u64, P_STATIC + 4);
        let lat = ((h % 1600) as f64) / 10.0 - 80.0;
        let lon = (((h >> 16) % 3600) as f64) / 10.0 - 180.0;
        (lat, lon)
    }

    fn uploads_enabled(&self, peer: u32) -> bool {
        hash64(self.cfg.seed, peer as u64, P_STATIC + 5) % 100 < 85
    }

    fn down_mbps(&self, peer: u32) -> f64 {
        let base = REGION_DOWN_MBPS[self.region_of_peer(peer)];
        let h = hash64(self.cfg.seed, peer as u64, P_STATIC + 6);
        // Log-uniform spread of 0.25x..4x around the regional median.
        base * (0.25f64) * 2f64.powf(((h % 4097) as f64) / 4096.0 * 4.0)
    }

    fn object_size(&self, object: u64) -> u64 {
        // Log-uniform 1 MiB..1 GiB, heavier on small objects.
        (1u64 << 20) << (hash64(self.cfg.seed, object, P_STATIC + 7) % 11).min(10)
    }
}

/// Download metadata computed at start, carried to the finish event.
#[derive(Clone, Copy, Debug)]
struct DlMeta {
    object: u64,
    size: u64,
    bytes_infra: u64,
    bytes_peers: u64,
    started_us: u64,
    /// 0 = completed, 1 = failed (other), 2 = failed (system), 3 = abandoned
    outcome: u8,
    initial_peers: u32,
    day: u32,
    k: u32,
}

enum ScaledEvent {
    DayStart {
        day: u64,
    },
    Login {
        peer: u32,
        day: u32,
    },
    StartDownload {
        peer: u32,
        day: u32,
        k: u32,
    },
    FinishDownload {
        peer: u32,
        meta: DlMeta,
    },
    Fault {
        idx: u32,
    },
    /// Cross-shard: a remote-region peer uploaded `bytes` of `object` to
    /// the (carried) downloader. Emitted as a [`TransferRecord`] in the
    /// uploader's region stream at barrier delivery.
    RemoteUpload {
        region: u8,
        from_peer: u32,
        to_guid: u128,
        to_as: u32,
        to_country: u16,
        bytes: u64,
        object: u64,
    },
}

/// Mutable per-region state: fault windows, streaming sinks, tallies.
/// All counters are u64 — at a simulated month × million-peer scale the
/// byte tallies alone pass 2^40.
struct RegionLocal {
    digest: DigestSink,
    summary: StreamingSummary,
    control_down_until: u64,
    dir_degraded_until: u64,
    edge_down_until: u64,
    logins: u64,
    downloads: u64,
    completed: u64,
    abandoned: u64,
    failed: u64,
    skipped_offline: u64,
    bytes_infra: u64,
    bytes_peers: u64,
    transfers: u64,
    remote_uploads_in: u64,
    alerts: Vec<String>,
}

impl RegionLocal {
    fn new() -> Self {
        RegionLocal {
            digest: DigestSink::new(),
            summary: StreamingSummary::new(),
            control_down_until: 0,
            dir_degraded_until: 0,
            edge_down_until: 0,
            logins: 0,
            downloads: 0,
            completed: 0,
            abandoned: 0,
            failed: 0,
            skipped_offline: 0,
            bytes_infra: 0,
            bytes_peers: 0,
            transfers: 0,
            remote_uploads_in: 0,
            alerts: Vec::new(),
        }
    }
}

/// One shard: a contiguous block of regions and their peers.
struct ScaledShard {
    world: Arc<ScaledWorld>,
    regions: std::ops::Range<usize>,
    peer_lo: u32,
    peer_hi: u32,
    /// SoA mutable peer state: session end time in µs (0 = offline).
    /// This is the *entire* per-peer mutable footprint — 8 bytes.
    online_until: Vec<u64>,
    locals: Vec<RegionLocal>,
}

impl ScaledShard {
    fn new(world: Arc<ScaledWorld>, shard: usize) -> Self {
        let regions = world.regions_of_shard(shard);
        let peer_lo = world.region_starts[regions.start];
        let peer_hi = world.region_starts[regions.end];
        ScaledShard {
            regions: regions.clone(),
            peer_lo,
            peer_hi,
            online_until: vec![0u64; (peer_hi - peer_lo) as usize],
            locals: regions.map(|_| RegionLocal::new()).collect(),
            world,
        }
    }

    #[inline]
    fn online(&self, peer: u32) -> u64 {
        self.online_until[(peer - self.peer_lo) as usize]
    }

    #[inline]
    fn set_online(&mut self, peer: u32, until: u64) {
        self.online_until[(peer - self.peer_lo) as usize] = until;
    }

    #[inline]
    fn local_mut(&mut self, region: usize) -> &mut RegionLocal {
        &mut self.locals[region - self.regions.start]
    }

    fn day_start(&mut self, at: SimTime, day: u64, out: &mut Outbox<ScaledEvent>) {
        let cfg = &self.world.cfg;
        let p = cfg.daily_login_prob;
        for peer in self.peer_lo..self.peer_hi {
            let mut rng = key_rng(cfg.seed, peer as u64, day, P_LOGIN);
            if rng.chance(p) {
                let t = at + SimDuration(rng.below(DAY_US));
                out.schedule(
                    t,
                    ScaledEvent::Login {
                        peer,
                        day: day as u32,
                    },
                );
            }
        }
        if day + 1 < cfg.days {
            out.schedule(
                SimTime((day + 1) * DAY_US),
                ScaledEvent::DayStart { day: day + 1 },
            );
        }
    }

    fn login(&mut self, at: SimTime, peer: u32, day: u32, out: &mut Outbox<ScaledEvent>) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let mut rng = key_rng(cfg.seed, peer as u64, day as u64, P_SESSION);
        // Sessions: 30 min .. ~12.5 h (background-mode clients stay up).
        let session_us = 1_800_000_000 + rng.below(43_200_000_000);
        self.set_online(peer, at.as_micros() + session_us);

        let (lat, lon) = world.lat_lon(peer);
        let rec = LoginRecord {
            at,
            guid: world.guid(peer),
            ip: world.ip(peer, day as u64),
            asn: world.asn(peer),
            country: world.country(peer),
            lat,
            lon,
            uploads_enabled: world.uploads_enabled(peer),
            software_version: (hash64(cfg.seed, peer as u64, P_STATIC + 8) % 12) as u32,
            secondary_guids: Vec::new(),
        };
        let region = world.region_of_peer(peer);
        let local = self.local_mut(region);
        local.digest.on_login(&rec);
        local.summary.on_login(&rec);
        local.logins += 1;

        // Downloads this session: geometric-ish knockdown around the mean.
        let mut p = cfg.downloads_per_login;
        let mut k = 0u32;
        while k < 8 && rng.chance(p.min(1.0)) {
            let t = at + SimDuration(rng.below(session_us));
            out.schedule(t, ScaledEvent::StartDownload { peer, day, k });
            k += 1;
            p *= 0.55;
        }
    }

    fn start_download(
        &mut self,
        at: SimTime,
        peer: u32,
        day: u32,
        k: u32,
        out: &mut Outbox<ScaledEvent>,
    ) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let region = world.region_of_peer(peer);
        let now_us = at.as_micros();
        if self.online(peer) < now_us {
            // Session truncated (churn burst) before this request fired.
            self.local_mut(region).skipped_offline += 1;
            return;
        }
        let mut rng = key_rng(
            cfg.seed,
            peer as u64,
            ((day as u64) << 4) | k as u64,
            P_DOWNLOAD,
        );
        // Zipf-flavoured catalog draw: log-uniform rank.
        let rank = ((cfg.objects as f64).powf(rng.f64()) as u64).min(cfg.objects - 1);
        let object = rank;
        let size = world.object_size(object);

        let hour = at.hour_of_day_local(REGION_TZ[region]) as usize;
        let avail = DIURNAL[hour];
        let pop = 1.0 / (1.0 + 4.0 * rank as f64 / cfg.objects as f64);
        let mut eta = 0.85 * pop * avail;

        let local = &self.locals[region - self.regions.start];
        let control_down = now_us < local.control_down_until;
        let dir_degraded = now_us < local.dir_degraded_until;
        let edge_down = now_us < local.edge_down_until;
        if control_down {
            eta = 0.0; // no source queries: edge-only degradation (§3.8)
        } else if dir_degraded {
            eta *= 0.3; // DN re-populating via paced RE-ADDs
        }
        eta = eta.min(0.95);

        let initial_peers = (eta * 40.0) as u32;
        let down_bps = world.down_mbps(peer) * 125_000.0;
        let mut outcome = 0u8;
        let (bytes_peers, bytes_infra);
        let mut rate = down_bps * (0.55 + 0.45 * avail);
        if edge_down {
            if eta <= 0.0 {
                // Control and edge both dark: nothing can serve this.
                outcome = 2;
                bytes_peers = 0;
                bytes_infra = 0;
            } else {
                bytes_peers = size; // peer-only, slower
                bytes_infra = 0;
                rate *= 0.6;
            }
        } else {
            bytes_peers = (size as f64 * eta) as u64;
            bytes_infra = size - bytes_peers;
        }
        if outcome == 0 && rng.chance(0.003) {
            outcome = if rng.chance(0.3) { 2 } else { 1 };
        }
        let nominal_us = ((size as f64 / rate) * 1e6) as u64 + rng.below(30_000_000) + 1;
        let dur_us = match outcome {
            1 | 2 => nominal_us / 3,
            _ => nominal_us,
        };
        let meta = DlMeta {
            object,
            size,
            bytes_infra,
            bytes_peers,
            started_us: now_us,
            outcome,
            initial_peers,
            day,
            k,
        };
        out.schedule(
            SimTime(now_us + dur_us),
            ScaledEvent::FinishDownload { peer, meta },
        );
    }

    fn finish_download(
        &mut self,
        at: SimTime,
        peer: u32,
        meta: DlMeta,
        out: &mut Outbox<ScaledEvent>,
    ) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let region = world.region_of_peer(peer);
        let finish_us = at.as_micros();
        let mut ended = finish_us;
        let mut outcome = meta.outcome;
        let mut bytes_infra = meta.bytes_infra;
        let mut bytes_peers = meta.bytes_peers;
        // The session may have ended — naturally or via a churn burst —
        // before the transfer finished: truncate to what was fetched.
        let online_until = self.online(peer);
        if online_until < finish_us && outcome == 0 {
            outcome = 3;
            ended = online_until.max(meta.started_us + 1);
            let frac =
                (ended - meta.started_us) as f64 / (finish_us - meta.started_us).max(1) as f64;
            bytes_infra = (bytes_infra as f64 * frac) as u64;
            bytes_peers = (bytes_peers as f64 * frac) as u64;
        } else if outcome == 1 || outcome == 2 {
            bytes_infra /= 3;
            bytes_peers /= 3;
        }
        let rec = DownloadRecord {
            guid: world.guid(peer),
            object: ObjectId(meta.object),
            cp: CpCode((meta.object % 40) as u32),
            size: ByteCount(meta.size),
            p2p_enabled: true,
            started: SimTime(meta.started_us),
            ended: SimTime(ended),
            bytes_infra: ByteCount(bytes_infra),
            bytes_peers: ByteCount(bytes_peers),
            outcome: match outcome {
                0 => DownloadOutcome::Completed,
                1 => DownloadOutcome::Failed {
                    system_related: false,
                },
                2 => DownloadOutcome::Failed {
                    system_related: true,
                },
                _ => DownloadOutcome::Abandoned,
            },
            initial_peers: meta.initial_peers,
            asn: world.asn(peer),
            country: world.country(peer),
            region: region as u8,
        };
        {
            let local = self.local_mut(region);
            local.digest.on_download(&rec);
            local.summary.on_download(&rec);
            local.downloads += 1;
            match outcome {
                0 => local.completed += 1,
                1 | 2 => local.failed += 1,
                _ => local.abandoned += 1,
            }
            local.bytes_infra += bytes_infra;
            local.bytes_peers += bytes_peers;
        }

        // Attribute peer bytes to uploaders (§6.1 transfer tuples). Local
        // uploads are emitted here; remote-region ones travel to the
        // uploader's shard and are emitted there at barrier delivery.
        if bytes_peers == 0 {
            return;
        }
        let mut rng = key_rng(
            cfg.seed,
            peer as u64,
            ((meta.day as u64) << 4) | meta.k as u64,
            P_UPLOADERS,
        );
        let n_up = 1 + rng.index(3) as u64;
        let share = bytes_peers / n_up;
        let to_guid = world.guid(peer);
        let to_as = world.asn(peer);
        let to_country = world.country(peer);
        for i in 0..n_up {
            let bytes = if i == n_up - 1 {
                bytes_peers - share * (n_up - 1)
            } else {
                share
            };
            if bytes == 0 {
                continue;
            }
            let src_region = if rng.chance(cfg.cross_region_prob) {
                rng.index(Region::ALL.len())
            } else {
                region
            };
            let peers = world.region_peers(src_region);
            let from_peer = peers.start + rng.below((peers.end - peers.start) as u64) as u32;
            if src_region == region {
                let t = TransferRecord {
                    from_guid: world.guid(from_peer),
                    to_guid,
                    from_as: world.asn(from_peer),
                    to_as,
                    from_country: world.country(from_peer),
                    to_country,
                    bytes: ByteCount(bytes),
                    object: ObjectId(meta.object),
                };
                let local = self.local_mut(region);
                local.digest.on_transfer(&t);
                local.summary.on_transfer(&t);
                local.transfers += 1;
            } else {
                out.send(
                    self.world.shard_of_region(src_region),
                    out.window_end(),
                    ScaledEvent::RemoteUpload {
                        region: src_region as u8,
                        from_peer,
                        to_guid: to_guid.0,
                        to_as: to_as.0,
                        to_country,
                        bytes,
                        object: meta.object,
                    },
                );
            }
        }
    }

    fn fault(&mut self, at: SimTime, idx: u32) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let ev = cfg.faults.events[idx as usize];
        let now_us = at.as_micros();
        match ev.kind {
            FaultKind::CnCrash { region } => {
                let r = region as usize;
                if self.regions.contains(&r) {
                    let local = self.local_mut(r);
                    local.control_down_until = now_us + 600_000_000;
                    local.alerts.push(format!(
                        "h{:03} {}: cn_crash",
                        ev.at_hours,
                        Region::ALL[r].label()
                    ));
                }
            }
            FaultKind::DnWipe { region } => {
                let r = region as usize;
                if self.regions.contains(&r) {
                    let local = self.local_mut(r);
                    local.dir_degraded_until = now_us + 1_800_000_000;
                    local.alerts.push(format!(
                        "h{:03} {}: dn_wipe",
                        ev.at_hours,
                        Region::ALL[r].label()
                    ));
                }
            }
            FaultKind::EdgeOutage { region, secs } => {
                let r = region as usize;
                if self.regions.contains(&r) {
                    let local = self.local_mut(r);
                    local.edge_down_until = now_us + secs * 1_000_000;
                    local.alerts.push(format!(
                        "h{:03} {}: edge_outage {}s",
                        ev.at_hours,
                        Region::ALL[r].label(),
                        secs
                    ));
                }
            }
            FaultKind::ChurnBurst { fraction } => {
                let mut dropped = 0u64;
                for peer in self.peer_lo..self.peer_hi {
                    if self.online(peer) > now_us {
                        let mut rng = key_rng(cfg.seed, peer as u64, now_us, P_CHURN);
                        if rng.chance(fraction) {
                            self.set_online(peer, now_us);
                            dropped += 1;
                        }
                    }
                }
                for r in self.regions.clone() {
                    let local = self.local_mut(r);
                    local.alerts.push(format!(
                        "h{:03} {}: churn_burst dropped={dropped}",
                        ev.at_hours,
                        Region::ALL[r].label()
                    ));
                }
            }
        }
    }
}

impl ShardWorker for ScaledShard {
    type Event = ScaledEvent;

    fn handle(&mut self, at: SimTime, event: ScaledEvent, out: &mut Outbox<ScaledEvent>) {
        match event {
            ScaledEvent::DayStart { day } => self.day_start(at, day, out),
            ScaledEvent::Login { peer, day } => self.login(at, peer, day, out),
            ScaledEvent::StartDownload { peer, day, k } => {
                self.start_download(at, peer, day, k, out)
            }
            ScaledEvent::FinishDownload { peer, meta } => self.finish_download(at, peer, meta, out),
            ScaledEvent::Fault { idx } => self.fault(at, idx),
            ScaledEvent::RemoteUpload {
                region,
                from_peer,
                to_guid,
                to_as,
                to_country,
                bytes,
                object,
            } => {
                let world = Arc::clone(&self.world);
                let t = TransferRecord {
                    from_guid: world.guid(from_peer),
                    to_guid: Guid(to_guid),
                    from_as: world.asn(from_peer),
                    to_as: AsNumber(to_as),
                    from_country: world.country(from_peer),
                    to_country,
                    bytes: ByteCount(bytes),
                    object: ObjectId(object),
                };
                let local = self.local_mut(region as usize);
                local.digest.on_transfer(&t);
                local.summary.on_transfer(&t);
                local.transfers += 1;
                local.remote_uploads_in += 1;
            }
        }
    }
}

/// Per-region results: tallies, alert log, and record-stream digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionReport {
    /// Table-2 label.
    pub region: &'static str,
    /// Login records emitted.
    pub logins: u64,
    /// Download records emitted.
    pub downloads: u64,
    /// Completed downloads.
    pub completed: u64,
    /// Abandoned (incl. churn-truncated) downloads.
    pub abandoned: u64,
    /// Failed downloads.
    pub failed: u64,
    /// Requests skipped because the session had already been cut.
    pub skipped_offline: u64,
    /// Edge bytes served.
    pub bytes_infra: u64,
    /// Peer bytes served.
    pub bytes_peers: u64,
    /// Transfer records emitted (local + remote-in).
    pub transfers: u64,
    /// Cross-shard uploads credited to this region.
    pub remote_uploads_in: u64,
    /// Deterministic fault alert log.
    pub alerts: Vec<String>,
    /// SHA-256 stream digests of this region's records.
    pub digest: DigestTriple,
}

/// The merged result of a scaled run — everything downstream analysis and
/// the determinism gates judge.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaledOutput {
    /// Table-1 summary, streamed (never materialized).
    pub summary: DatasetSummary,
    /// Global peer efficiency (§5.1).
    pub peer_efficiency: f64,
    /// Per-region reports in Table-2 order.
    pub regions: Vec<RegionReport>,
    /// Shards used.
    pub shards: usize,
    /// Region block each shard owns, as a "+"-joined label per shard
    /// (e.g. `"Europe"`, `"US East+US West"`). Deterministic geometry.
    pub shard_labels: Vec<String>,
    /// Resident peer population per shard (same geometry).
    pub shard_peers: Vec<u64>,
    /// Total events processed.
    pub events: u64,
    /// Window barriers crossed.
    pub windows: u64,
    /// Cross-shard messages exchanged.
    pub cross_messages: u64,
}

impl ScaledOutput {
    /// Deterministic multi-line report — the byte string the 2-shard gate
    /// diffs against the sequential oracle. No wall-clock, no RSS: those
    /// are volatile and belong on stderr / bench sidecars.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "scaled run: {} logins, {} downloads ({} completed), peer_efficiency {:.4}",
            self.summary.log_entries - self.summary.downloads - self.transfers_total(),
            self.summary.downloads,
            self.completed_total(),
            self.peer_efficiency,
        );
        let _ = writeln!(
            s,
            "summary: guids={} urls={} ips={} locations={} ases={} countries={}",
            self.summary.guids,
            self.summary.urls,
            self.summary.ips,
            self.summary.locations,
            self.summary.ases,
            self.summary.countries
        );
        for r in &self.regions {
            let _ = writeln!(
                s,
                "{:>14}: logins={} dl={} ok={} ab={} fail={} peers_B={} infra_B={} tx={} remote_in={}",
                r.region,
                r.logins,
                r.downloads,
                r.completed,
                r.abandoned,
                r.failed,
                r.bytes_peers,
                r.bytes_infra,
                r.transfers,
                r.remote_uploads_in
            );
            let _ = writeln!(s, "{:>14}  {}", "", r.digest.fingerprint());
            for a in &r.alerts {
                let _ = writeln!(s, "{:>14}  alert {a}", "");
            }
        }
        let _ = writeln!(
            s,
            "runner: shards={} events={} windows={} cross={}",
            self.shards, self.events, self.windows, self.cross_messages
        );
        s
    }

    fn completed_total(&self) -> u64 {
        self.regions.iter().map(|r| r.completed).sum()
    }

    fn transfers_total(&self) -> u64 {
        self.regions.iter().map(|r| r.transfers).sum()
    }
}

/// Run the scaled simulation. `parallel` picks the threaded window runner;
/// `false` is the sequential oracle the gates compare against. Results are
/// bit-identical either way. Per-shard runner counters are published into
/// `registry` when given.
pub fn run_scaled(
    cfg: &ScaledConfig,
    parallel: bool,
    registry: Option<&MetricsRegistry>,
) -> ScaledOutput {
    run_scaled_profiled(cfg, parallel, registry, None).0
}

/// [`run_scaled`] with an optional shard profiler riding along: the
/// profiler's deterministic channel sees every window barrier (and is
/// itself byte-identical between the sequential oracle and the threaded
/// run — property-tested in `tests/scaled_determinism.rs`), its volatile
/// channel collects the wall-clock timeline. Returned alongside the
/// output for the caller to render.
pub fn run_scaled_profiled(
    cfg: &ScaledConfig,
    parallel: bool,
    registry: Option<&MetricsRegistry>,
    profiler: Option<ShardProfiler>,
) -> (ScaledOutput, Option<ShardProfiler>) {
    let world = Arc::new(ScaledWorld::new(cfg.clone()));
    let shards: Vec<ScaledShard> = (0..cfg.shards)
        .map(|k| ScaledShard::new(Arc::clone(&world), k))
        .collect();
    let mut runner = ShardRunner::new(shards, cfg.window);
    for k in 0..cfg.shards {
        runner.seed(k, SimTime::ZERO, ScaledEvent::DayStart { day: 0 });
    }
    for (idx, f) in cfg.faults.events.iter().enumerate() {
        let at = SimTime(f.at_hours * 3_600_000_000);
        let ev = |_k: usize| ScaledEvent::Fault { idx: idx as u32 };
        match f.kind {
            FaultKind::CnCrash { region }
            | FaultKind::DnWipe { region }
            | FaultKind::EdgeOutage { region, .. } => {
                let k = world.shard_of_region(region as usize);
                runner.seed(k, at, ev(k));
            }
            FaultKind::ChurnBurst { .. } => {
                for k in 0..cfg.shards {
                    runner.seed(k, at, ev(k));
                }
            }
        }
    }

    if let Some(p) = profiler {
        runner.attach_profiler(p);
    }

    if parallel {
        runner.run_parallel();
    } else {
        runner.run_sequential();
    }

    let profiler = runner.take_profiler();
    if let Some(reg) = registry {
        runner.publish_stats(reg);
    }
    let events = runner.stats().iter().map(|s| s.events).sum();
    let cross_messages = runner.stats().iter().map(|s| s.cross_sent).sum();
    let windows = runner.windows_run();

    let mut summary = StreamingSummary::new();
    let mut regions = Vec::new();
    for shard in runner.into_workers() {
        let base = shard.regions.start;
        for (i, local) in shard.locals.into_iter().enumerate() {
            summary.merge(&local.summary);
            regions.push(RegionReport {
                region: Region::ALL[base + i].label(),
                logins: local.logins,
                downloads: local.downloads,
                completed: local.completed,
                abandoned: local.abandoned,
                failed: local.failed,
                skipped_offline: local.skipped_offline,
                bytes_infra: local.bytes_infra,
                bytes_peers: local.bytes_peers,
                transfers: local.transfers,
                remote_uploads_in: local.remote_uploads_in,
                alerts: local.alerts,
                digest: local.digest.finalize(),
            });
        }
    }
    regions.sort_by_key(|r| Region::ALL.iter().position(|x| x.label() == r.region));
    let shard_labels = (0..cfg.shards)
        .map(|k| {
            world
                .regions_of_shard(k)
                .map(|r| Region::ALL[r].label())
                .collect::<Vec<_>>()
                .join("+")
        })
        .collect();
    let shard_peers = (0..cfg.shards)
        .map(|k| {
            let r = world.regions_of_shard(k);
            (world.region_starts[r.end] - world.region_starts[r.start]) as u64
        })
        .collect();
    let out = ScaledOutput {
        peer_efficiency: summary.peer_efficiency(),
        summary: summary.summary(),
        regions,
        shards: cfg.shards,
        shard_labels,
        shard_peers,
        events,
        windows,
        cross_messages,
    };
    (out, profiler)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaledConfig {
        ScaledConfig {
            peers: 3_000,
            objects: 400,
            days: 3,
            shards: 3,
            ..ScaledConfig::default()
        }
    }

    #[test]
    fn scaled_run_produces_work_in_every_region() {
        let out = run_scaled(&tiny(), false, None);
        assert_eq!(out.regions.len(), 9);
        assert!(out.summary.downloads > 0);
        assert!(out.regions.iter().all(|r| r.logins > 0));
        assert!(out.peer_efficiency > 0.0 && out.peer_efficiency < 1.0);
        assert!(out.cross_messages > 0, "cross-region uploads must flow");
    }

    #[test]
    fn report_is_replayable() {
        let a = run_scaled(&tiny(), false, None).report();
        let b = run_scaled(&tiny(), false, None).report();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential_at_tiny_scale() {
        let a = run_scaled(&tiny(), false, None);
        let b = run_scaled(&tiny(), true, None);
        assert_eq!(a, b);
    }

    #[test]
    fn region_blocks_partition_the_population() {
        let w = ScaledWorld::new(tiny());
        assert_eq!(w.region_starts[0], 0);
        assert_eq!(w.region_starts[9] as u64, w.cfg.peers);
        for r in 0..9 {
            for p in w.region_peers(r).step_by(97) {
                assert_eq!(w.region_of_peer(p), r);
            }
        }
    }

    #[test]
    fn shard_map_is_contiguous_and_total() {
        for shards in 1..=9usize {
            let w = ScaledWorld::new(ScaledConfig { shards, ..tiny() });
            let mut covered = 0;
            for k in 0..shards {
                let r = w.regions_of_shard(k);
                assert!(!r.is_empty(), "{shards} shards: shard {k} empty");
                assert_eq!(r.start, covered, "contiguity");
                covered = r.end;
            }
            assert_eq!(covered, 9);
        }
    }
}
