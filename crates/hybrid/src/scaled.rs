//! Million-peer scaled simulation on the sharded runner.
//!
//! The full-fidelity [`crate::sim::HybridSim`] models every flow through
//! the max-min fair fluid network; that is the right tool at 30 k peers and
//! the wrong one at the paper's 25.9 M GUIDs. This module is the scale
//! path: a purpose-built month simulation that holds **struct-of-arrays**
//! peer state (8 bytes of mutable state per peer), derives every static
//! peer attribute procedurally (hash of the peer index — nothing
//! materialized), replaces the fluid solver with a closed-form regional
//! rate model, and **streams** every record into per-region
//! [`RecordSink`]s (running summaries + SHA-256 stream digests) instead of
//! accumulating `Vec`s. RAM is O(peers) with a ~10-byte constant, not
//! O(records).
//!
//! ## Sub-region sharding and determinism
//!
//! The shard key is a **contiguous sub-region block** of the peer index
//! space. Peers are laid out by region (the nine Table-2 regions occupy
//! contiguous index blocks in [`Region::ALL`] order), and a
//! [`BlockPartition`] cuts `0..peers` into K equal-population blocks —
//! so `--shards K` works for any `K ≤ min(peers, MAX_SHARDS)`, well past
//! the former K ≤ 9 region cap. A block may span several regions or a
//! *sub-range* of one; a shard holds one `RegionLocal` per region its
//! block overlaps and only ever touches its own peers' state. Equal
//! population is the right load proxy here: the committed
//! `results/scale.profile.json` mail matrix shows per-peer event rates
//! near-uniform across regions and no dominant cross-region pair, so
//! keeping the `Region::ALL`-order contiguity (rather than reordering
//! regions) co-locates the hottest same-region traffic by construction.
//!
//! The one cross-shard interaction — a download sourcing bytes from an
//! uploader owned by another shard — becomes a cross-shard message
//! delivered at the next window barrier, which models the slow
//! cross-continent discovery path and satisfies the runner's lookahead
//! contract for free. All randomness is **content-keyed**
//! (`DetRng::seeded(mix(seed, entity, purpose))`), so no decision depends
//! on global draw order. Together these meet the [`netsession_sim::shard`]
//! proof obligations, and the parallel run is bit-identical to the
//! sequential oracle — enforced by `tests/scaled_determinism.rs` across
//! 50+ seeded scenarios (faulty and fault-free, shard counts 1..=32) and
//! by the 2-shard and 16-sub-shard gates in `scripts/check.sh`.
//!
//! ## Lazy per-day event seeding
//!
//! Login events are not enqueued a day ahead: `DayStart` makes one pass
//! over the shard's peers and drops each would-be login into one of 24
//! reusable **hour buckets** (4 bytes per pending login), and an
//! `HourSeed` event at each hour boundary re-derives the exact login time
//! from the same content-keyed RNG and schedules the real `Login` then.
//! In-flight queue events are thereby O(active peers) — roughly one hour
//! of logins plus open sessions' downloads — instead of O(day's events),
//! which is what lets the paper's full 25.9 M-GUID population × 31 days
//! fit in a few GiB.

use crate::config::{FaultKind, FaultSchedule};
use netsession_core::id::{AsNumber, CpCode, Guid, ObjectId};
use netsession_core::rng::DetRng;
use netsession_core::time::{SimDuration, SimTime};
use netsession_core::units::ByteCount;
use netsession_logs::dataset::DatasetSummary;
use netsession_logs::sink::{DigestSink, DigestTriple, RecordSink, StreamingSummary};
use netsession_logs::{DownloadOutcome, DownloadRecord, LoginRecord, TransferRecord};
use netsession_obs::profile::ShardProfiler;
use netsession_obs::timeseries::{merge_shards, MergedSeries, SeriesSpec, ShardSeries};
use netsession_obs::MetricsRegistry;
use netsession_sim::shard::{BlockPartition, Outbox, ShardRunner, ShardWorker};
use netsession_world::geo::Region;
use std::sync::Arc;

const DAY_US: u64 = 86_400_000_000;
const HOUR_US: u64 = 3_600_000_000;

/// Hard ceiling on sub-region shard count. Far above any plausible core
/// count; mostly a guard against typo'd `--shards` values allocating
/// thousands of queues.
pub const MAX_SHARDS: usize = 512;

/// Peer-population share per region, §4.2-calibrated ("most of the peers
/// are located in North America (27%) and Europe (35%)"), in
/// [`Region::ALL`] order, summing to 100.
const REGION_WEIGHTS: [u64; 9] = [15, 12, 12, 5, 8, 8, 35, 2, 3];

/// Region timezone offsets (hours from GMT) for the diurnal curve.
const REGION_TZ: [i32; 9] = [-5, -8, -4, 5, 8, 7, 1, 2, 10];

/// Regional median downstream access speed, Mbps (Fig 3 has strong
/// regional skew; these are coarse 2012-era medians).
const REGION_DOWN_MBPS: [f64; 9] = [10.0, 12.0, 4.0, 1.5, 6.0, 5.0, 9.0, 1.0, 8.0];

/// Hour-of-local-day activity weights (diurnal curve, §4.2 Fig 2 shape).
const DIURNAL: [f64; 24] = [
    0.45, 0.35, 0.30, 0.28, 0.30, 0.35, 0.45, 0.60, 0.75, 0.85, 0.90, 0.95, 1.00, 1.00, 0.95, 0.95,
    0.95, 1.00, 1.00, 1.00, 0.95, 0.85, 0.70, 0.55,
];

// Purpose tags for content-keyed RNG streams. Distinct constants keep the
// streams independent; the mixer multiplies by odd constants so (entity,
// purpose) pairs never collide by accident.
/// Time-series window length: one simulated hour, the paper's diurnal
/// resolution (Fig. 2) and the alert rules' trailing window.
pub const TS_INTERVAL_US: u64 = HOUR_US;

// Metric indices into [`TS_METRICS`], used by the recording hot path.
const TS_LOGINS: usize = 0;
const TS_DL_STARTED: usize = 1;
const TS_DL_COMPLETED: usize = 2;
const TS_DL_FAILED: usize = 3;
const TS_DL_ABANDONED: usize = 4;
const TS_BYTES_PEERS: usize = 5;
const TS_BYTES_INFRA: usize = 6;
const TS_TRANSFERS: usize = 7;
const TS_MAIL: usize = 8;
const TS_ACTIVE: usize = 9;
const TS_DEGRADED: usize = 10;
const TS_CN_CRASHES: usize = 11;
const TS_DN_WIPES: usize = 12;
const TS_EDGE_OUTAGES: usize = 13;
const TS_CHURN_BURSTS: usize = 14;
const TS_CHURN_OFFLINE: usize = 15;
const TS_EDGE_ONLY: usize = 16;
const TS_INJECTED: usize = 17;

// Bits of the `scaled.degraded` flags gauge (per region, OR across the
// sub-shards holding slices of the region — every part sees the same
// fault event, so the OR is exact).
const DEG_CONTROL: i64 = 1;
const DEG_DIRECTORY: i64 = 2;
const DEG_EDGE: i64 = 4;

/// The scaled runner's time-series catalog, in sidecar order. Workload
/// metrics carry the `scaled.` prefix; fault metrics reuse the
/// `hybrid.fault.*` names the PR 5 alert rules watch, so
/// [`crate::alerts::standard_rules`] runs over the merged series
/// unchanged (and `check.sh`'s alert-coverage grep keeps them honest).
///
/// Everything recorded at content time is K-invariant; only
/// `scaled.cross_shard_mail` (counted at barrier delivery, a pure
/// shard-topology artifact) is flagged otherwise.
pub const TS_METRICS: &[SeriesSpec] = &[
    SeriesSpec::counter("scaled.logins"),
    SeriesSpec::counter("scaled.downloads_started"),
    SeriesSpec::counter("scaled.downloads_completed"),
    SeriesSpec::counter("scaled.downloads_failed"),
    SeriesSpec::counter("scaled.downloads_abandoned"),
    SeriesSpec::counter("scaled.bytes_peers"),
    SeriesSpec::counter("scaled.bytes_infra"),
    SeriesSpec::counter("scaled.transfers"),
    SeriesSpec::counter_k_variant("scaled.cross_shard_mail"),
    SeriesSpec::level("scaled.active_peers"),
    SeriesSpec::flags("scaled.degraded"),
    SeriesSpec::counter("hybrid.fault.cn_crashes"),
    SeriesSpec::counter("hybrid.fault.dn_wipes"),
    SeriesSpec::counter("hybrid.fault.edge_outages"),
    SeriesSpec::counter("hybrid.fault.churn_bursts"),
    SeriesSpec::counter("hybrid.fault.churn_offline"),
    SeriesSpec::counter("hybrid.fault.edge_only_downloads"),
    SeriesSpec::counter("hybrid.fault.injected"),
];

const P_LOGIN: u64 = 0x01;
const P_SESSION: u64 = 0x02;
const P_DOWNLOAD: u64 = 0x03;
const P_UPLOADERS: u64 = 0x04;
const P_CHURN: u64 = 0x05;
const P_STATIC: u64 = 0x06;

#[inline]
fn key_rng(seed: u64, a: u64, b: u64, purpose: u64) -> DetRng {
    DetRng::seeded(
        seed ^ a
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            .wrapping_add(purpose.wrapping_mul(0x1656_67b1_9e37_79f9)),
    )
}

#[inline]
fn hash64(seed: u64, x: u64, purpose: u64) -> u64 {
    // One splitmix64 round over the mixed key: cheap enough to call per
    // static attribute instead of materializing per-peer structs.
    let mut z = seed
        .wrapping_add(x.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(purpose.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration for one scaled run.
#[derive(Clone, Debug)]
pub struct ScaledConfig {
    /// Master seed.
    pub seed: u64,
    /// Installed population (the paper's 25.9 M GUIDs; bench target 1 M+).
    pub peers: u64,
    /// Catalog size.
    pub objects: u64,
    /// Simulated days (the trace month is 31).
    pub days: u64,
    /// Shard count, `1..=MAX_SHARDS` and at most `peers`: shards are
    /// contiguous equal-population sub-region blocks of the peer index
    /// space, so any count with non-empty blocks is valid.
    pub shards: usize,
    /// Conservative window length (also the cross-region message latency
    /// floor).
    pub window: SimDuration,
    /// Probability an installed peer logs in on a given day (§4.2).
    pub daily_login_prob: f64,
    /// Mean downloads initiated per login session.
    pub downloads_per_login: f64,
    /// Probability a peer-sourced byte share comes from a remote region.
    pub cross_region_prob: f64,
    /// Deterministic fault schedule (shares [`crate::config::FaultSchedule`]
    /// with the full-fidelity sim).
    pub faults: FaultSchedule,
    /// Record the per-(metric, region) sim-hour time series ([`TS_METRICS`])
    /// and attach the merged result to [`ScaledOutput::timeseries`]. Off
    /// reproduces the pre-telemetry run byte-for-byte (sampling is pure
    /// observation — the report is identical either way).
    pub timeseries: bool,
}

impl Default for ScaledConfig {
    fn default() -> Self {
        ScaledConfig {
            seed: 20121001,
            peers: 100_000,
            objects: 20_000,
            days: 31,
            shards: 4,
            window: SimDuration::from_secs(600),
            daily_login_prob: 0.4,
            downloads_per_login: 0.35,
            cross_region_prob: 0.15,
            faults: FaultSchedule::default(),
            timeseries: true,
        }
    }
}

impl ScaledConfig {
    /// Seconds-scale configuration for gates and tests.
    pub fn smoke() -> Self {
        ScaledConfig {
            peers: 20_000,
            objects: 2_000,
            days: 7,
            shards: 2,
            ..ScaledConfig::default()
        }
    }

    /// Check every config constraint, returning an actionable message for
    /// the first violation. [`run_scaled`] panics on an invalid config, so
    /// CLI front-ends should call this at parse time and print the error
    /// instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.peers == 0 || self.peers > u32::MAX as u64 {
            return Err(format!(
                "peers must be 1..={} (got {})",
                u32::MAX,
                self.peers
            ));
        }
        if self.objects == 0 {
            return Err("objects must be > 0".into());
        }
        if self.days == 0 {
            return Err("days must be > 0".into());
        }
        if !(1..=MAX_SHARDS).contains(&self.shards) {
            return Err(format!(
                "shards must be 1..={MAX_SHARDS} (got {}): shards are contiguous \
                 sub-region blocks, so counts past the 9 regions are fine, but \
                 {MAX_SHARDS} queues is the supported ceiling",
                self.shards
            ));
        }
        if self.shards as u64 > self.peers {
            return Err(format!(
                "shards ({}) must not exceed peers ({}): every sub-region block \
                 needs at least one peer — lower --shards or raise --peers",
                self.shards, self.peers
            ));
        }
        if !(0.0..=1.0).contains(&self.daily_login_prob) {
            return Err(format!(
                "daily_login_prob must be in [0, 1] (got {})",
                self.daily_login_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.cross_region_prob) {
            return Err(format!(
                "cross_region_prob must be in [0, 1] (got {})",
                self.cross_region_prob
            ));
        }
        Ok(())
    }
}

/// Immutable world geometry shared by all shards: region → peer-index
/// blocks and the sub-region shard partition of the same index space.
struct ScaledWorld {
    cfg: ScaledConfig,
    /// `region_starts[r]..region_starts[r+1]` is region r's peer block.
    region_starts: [u32; 10],
    /// `shard_starts[k]..shard_starts[k+1]` is shard k's peer block:
    /// equal-population [`BlockPartition`] cuts over the same contiguous,
    /// region-ordered index space. A shard block may span several regions
    /// or a sub-range of one.
    shard_starts: Vec<u32>,
}

impl ScaledWorld {
    fn new(cfg: ScaledConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ScaledConfig: {e}");
        }
        let total: u64 = REGION_WEIGHTS.iter().sum();
        let mut region_starts = [0u32; 10];
        let mut cum = 0u64;
        for (r, w) in REGION_WEIGHTS.iter().enumerate() {
            cum += w;
            region_starts[r + 1] = (cfg.peers * cum / total) as u32;
        }
        let part = BlockPartition::equal(cfg.peers, cfg.shards);
        let shard_starts = part.bounds().iter().map(|&s| s as u32).collect();
        ScaledWorld {
            cfg,
            region_starts,
            shard_starts,
        }
    }

    fn shard_of_peer(&self, peer: u32) -> usize {
        debug_assert!((peer as u64) < self.cfg.peers);
        self.shard_starts.partition_point(|&s| s <= peer) - 1
    }

    fn shard_peers(&self, shard: usize) -> std::ops::Range<u32> {
        self.shard_starts[shard]..self.shard_starts[shard + 1]
    }

    /// Regions shard `k`'s peer block overlaps (possibly partially at
    /// either end). Blocks are never empty, so neither is this range; it
    /// may include interior regions that are empty at tiny populations.
    fn regions_of_shard(&self, shard: usize) -> std::ops::Range<usize> {
        let peers = self.shard_peers(shard);
        let lo = self.region_of_peer(peers.start);
        let hi = self.region_of_peer(peers.end - 1);
        lo..hi + 1
    }

    /// Shards overlapping region `r`'s peer block; empty for a region
    /// that holds no peers (tiny populations).
    fn shards_of_region(&self, r: usize) -> std::ops::Range<usize> {
        let peers = self.region_peers(r);
        if peers.is_empty() {
            return 0..0;
        }
        let lo = self.shard_of_peer(peers.start);
        let hi = self.shard_of_peer(peers.end - 1);
        lo..hi + 1
    }

    fn region_of_peer(&self, peer: u32) -> usize {
        self.region_starts[1..]
            .iter()
            .position(|&end| peer < end)
            .expect("peer in range")
    }

    fn region_peers(&self, r: usize) -> std::ops::Range<u32> {
        self.region_starts[r]..self.region_starts[r + 1]
    }

    /// Shard label: overlapped regions joined with `+`; a partially held
    /// region is tagged with this shard's part index, e.g. `Europe[2/3]`.
    fn shard_label(&self, shard: usize) -> String {
        self.regions_of_shard(shard)
            .map(|r| {
                let parts = self.shards_of_region(r);
                if parts.len() <= 1 {
                    Region::ALL[r].label().to_string()
                } else {
                    format!(
                        "{}[{}/{}]",
                        Region::ALL[r].label(),
                        shard - parts.start + 1,
                        parts.len()
                    )
                }
            })
            .collect::<Vec<_>>()
            .join("+")
    }

    // -- procedural static attributes ------------------------------------

    fn guid(&self, peer: u32) -> Guid {
        let lo = hash64(self.cfg.seed, peer as u64, P_STATIC);
        let hi = hash64(self.cfg.seed, peer as u64, P_STATIC + 16);
        Guid(((hi as u128) << 64) | lo as u128)
    }

    fn ip(&self, peer: u32, day: u64) -> u32 {
        // Stable home address with light mobility: a second address shows
        // up on ~1 day in 4 (laptops roam, §6.3).
        let home = 0x0a00_0000u32.wrapping_add(peer.wrapping_mul(7)) | 1;
        if hash64(self.cfg.seed, (peer as u64) << 9 | day, P_STATIC + 1).is_multiple_of(4) {
            home.wrapping_add(0x4000_0000)
        } else {
            home
        }
    }

    fn asn(&self, peer: u32) -> AsNumber {
        let r = self.region_of_peer(peer) as u64;
        AsNumber((1000 + r * 500 + hash64(self.cfg.seed, peer as u64, P_STATIC + 2) % 60) as u32)
    }

    fn country(&self, peer: u32) -> u16 {
        let r = self.region_of_peer(peer) as u64;
        (r * 24 + hash64(self.cfg.seed, peer as u64, P_STATIC + 3) % 12) as u16
    }

    fn lat_lon(&self, peer: u32) -> (f64, f64) {
        let h = hash64(self.cfg.seed, peer as u64, P_STATIC + 4);
        let lat = ((h % 1600) as f64) / 10.0 - 80.0;
        let lon = (((h >> 16) % 3600) as f64) / 10.0 - 180.0;
        (lat, lon)
    }

    fn uploads_enabled(&self, peer: u32) -> bool {
        hash64(self.cfg.seed, peer as u64, P_STATIC + 5) % 100 < 85
    }

    fn down_mbps(&self, peer: u32) -> f64 {
        let base = REGION_DOWN_MBPS[self.region_of_peer(peer)];
        let h = hash64(self.cfg.seed, peer as u64, P_STATIC + 6);
        // Log-uniform spread of 0.25x..4x around the regional median.
        base * (0.25f64) * 2f64.powf(((h % 4097) as f64) / 4096.0 * 4.0)
    }

    fn object_size(&self, object: u64) -> u64 {
        // Log-uniform 1 MiB..1 GiB, heavier on small objects.
        (1u64 << 20) << (hash64(self.cfg.seed, object, P_STATIC + 7) % 11).min(10)
    }
}

/// Download metadata computed at start, carried to the finish event.
#[derive(Clone, Copy, Debug)]
struct DlMeta {
    object: u64,
    size: u64,
    bytes_infra: u64,
    bytes_peers: u64,
    started_us: u64,
    /// 0 = completed, 1 = failed (other), 2 = failed (system), 3 = abandoned
    outcome: u8,
    initial_peers: u32,
    day: u32,
    k: u32,
}

enum ScaledEvent {
    DayStart {
        day: u64,
    },
    /// Lazy seeding: drain this hour's login bucket, re-deriving each
    /// peer's exact login time from its content-keyed RNG.
    HourSeed {
        day: u64,
        hour: u8,
    },
    Login {
        peer: u32,
        day: u32,
    },
    StartDownload {
        peer: u32,
        day: u32,
        k: u32,
    },
    FinishDownload {
        peer: u32,
        meta: DlMeta,
    },
    Fault {
        idx: u32,
    },
    /// Cross-shard: a remote-region peer uploaded `bytes` of `object` to
    /// the (carried) downloader. Emitted as a [`TransferRecord`] in the
    /// uploader's region stream at barrier delivery. `at_us` carries the
    /// *origin* (download-finish) time so the receiving shard can record
    /// the transfer into its content-time window — crediting it at
    /// delivery time would make the per-window series depend on where the
    /// window barrier happens to fall, i.e. on `--shards`.
    RemoteUpload {
        region: u8,
        from_peer: u32,
        to_guid: u128,
        to_as: u32,
        to_country: u16,
        bytes: u64,
        object: u64,
        at_us: u64,
    },
}

/// One injected fault, as a structured record: class, region, the
/// sim-hour window it lands in, and a class-specific detail (outage
/// seconds, peers dropped). [`ScaledAlert::render`] reproduces the exact
/// legacy report lines, so committed artifacts are unaffected by the
/// move away from free-form strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaledAlert {
    /// Fault class tag: `cn_crash`, `dn_wipe`, `edge_outage`, `churn_burst`.
    pub class: &'static str,
    /// Schedule hour of the injection ([`FaultEvent::at_hours`]).
    pub at_hours: u64,
    /// Time-series window index ([`TS_INTERVAL_US`] grid) of the injection.
    pub window: u32,
    /// Region index into [`Region::ALL`].
    pub region: u8,
    /// `edge_outage`: outage seconds; `churn_burst`: sessions dropped in
    /// this region (this shard part); otherwise 0.
    pub detail: u64,
}

impl ScaledAlert {
    /// The report line for this alert — byte-identical to the strings the
    /// pre-structured implementation pushed.
    pub fn render(&self) -> String {
        let region = Region::ALL[self.region as usize].label();
        match self.class {
            "edge_outage" => format!(
                "h{:03} {}: edge_outage {}s",
                self.at_hours, region, self.detail
            ),
            "churn_burst" => format!(
                "h{:03} {}: churn_burst dropped={}",
                self.at_hours, region, self.detail
            ),
            class => format!("h{:03} {}: {}", self.at_hours, region, class),
        }
    }
}

/// Mutable per-region state: fault windows, streaming sinks, tallies.
/// All counters are u64 — at a simulated month × million-peer scale the
/// byte tallies alone pass 2^40.
struct RegionLocal {
    digest: DigestSink,
    summary: StreamingSummary,
    control_down_until: u64,
    dir_degraded_until: u64,
    edge_down_until: u64,
    logins: u64,
    downloads: u64,
    completed: u64,
    abandoned: u64,
    failed: u64,
    skipped_offline: u64,
    bytes_infra: u64,
    bytes_peers: u64,
    transfers: u64,
    remote_uploads_in: u64,
    alerts: Vec<ScaledAlert>,
}

impl RegionLocal {
    fn new() -> Self {
        RegionLocal {
            digest: DigestSink::new(),
            summary: StreamingSummary::new(),
            control_down_until: 0,
            dir_degraded_until: 0,
            edge_down_until: 0,
            logins: 0,
            downloads: 0,
            completed: 0,
            abandoned: 0,
            failed: 0,
            skipped_offline: 0,
            bytes_infra: 0,
            bytes_peers: 0,
            transfers: 0,
            remote_uploads_in: 0,
            alerts: Vec::new(),
        }
    }
}

/// One shard: a contiguous sub-region block of the peer index space, with
/// a `RegionLocal` per region the block overlaps.
struct ScaledShard {
    world: Arc<ScaledWorld>,
    shard: usize,
    /// Regions this shard's block overlaps (ends possibly partial).
    regions: std::ops::Range<usize>,
    peer_lo: u32,
    peer_hi: u32,
    /// SoA mutable peer state: session end time in µs (0 = offline).
    /// This is the *entire* per-peer mutable footprint — 8 bytes.
    online_until: Vec<u64>,
    locals: Vec<RegionLocal>,
    /// Reusable hour buckets for the *current* day's pending logins:
    /// filled by `DayStart` in one pass, drained in order by `HourSeed`.
    /// 4 bytes per pending login instead of a ~64-byte queued event.
    login_buckets: Vec<Vec<u32>>,
    /// Per-(metric, region) sim-hour series ([`TS_METRICS`] × the nine
    /// global regions). Every sample is keyed by content time, so the
    /// merged result is invariant in the shard count; `None` when
    /// [`ScaledConfig::timeseries`] is off.
    series: Option<ShardSeries>,
}

impl ScaledShard {
    fn new(world: Arc<ScaledWorld>, shard: usize) -> Self {
        let peers = world.shard_peers(shard);
        let (peer_lo, peer_hi) = (peers.start, peers.end);
        let regions = world.regions_of_shard(shard);
        ScaledShard {
            shard,
            regions: regions.clone(),
            peer_lo,
            peer_hi,
            online_until: vec![0u64; (peer_hi - peer_lo) as usize],
            locals: regions.map(|_| RegionLocal::new()).collect(),
            login_buckets: (0..24).map(|_| Vec::new()).collect(),
            series: world
                .cfg
                .timeseries
                .then(|| ShardSeries::new(TS_METRICS, Region::ALL.len(), TS_INTERVAL_US)),
            world,
        }
    }

    #[inline]
    fn ts_add(&mut self, metric: usize, region: usize, t_us: u64, delta: i64) {
        if let Some(s) = &mut self.series {
            s.add(metric, region, t_us, delta);
        }
    }

    #[inline]
    fn ts_level(&mut self, region: usize, t_us: u64, delta: i64) {
        if let Some(s) = &mut self.series {
            s.level_shift(TS_ACTIVE, region, t_us, delta);
        }
    }

    #[inline]
    fn ts_flags(&mut self, region: usize, from_us: u64, until_us: u64, bits: i64) {
        if let Some(s) = &mut self.series {
            s.flag_span(TS_DEGRADED, region, from_us, until_us, bits);
        }
    }

    #[inline]
    fn online(&self, peer: u32) -> u64 {
        self.online_until[(peer - self.peer_lo) as usize]
    }

    #[inline]
    fn set_online(&mut self, peer: u32, until: u64) {
        self.online_until[(peer - self.peer_lo) as usize] = until;
    }

    #[inline]
    fn local_mut(&mut self, region: usize) -> &mut RegionLocal {
        &mut self.locals[region - self.regions.start]
    }

    fn day_start(&mut self, at: SimTime, day: u64, out: &mut Outbox<ScaledEvent>) {
        let cfg = &self.world.cfg;
        let p = cfg.daily_login_prob;
        debug_assert!(
            self.login_buckets.iter().all(|b| b.is_empty()),
            "previous day's buckets fully drained"
        );
        for peer in self.peer_lo..self.peer_hi {
            let mut rng = key_rng(cfg.seed, peer as u64, day, P_LOGIN);
            if rng.chance(p) {
                let hour = (rng.below(DAY_US) / HOUR_US) as usize;
                self.login_buckets[hour].push(peer);
            }
        }
        for (hour, bucket) in self.login_buckets.iter().enumerate() {
            if !bucket.is_empty() {
                out.schedule(
                    at + SimDuration(hour as u64 * HOUR_US),
                    ScaledEvent::HourSeed {
                        day,
                        hour: hour as u8,
                    },
                );
            }
        }
        if day + 1 < cfg.days {
            out.schedule(
                SimTime((day + 1) * DAY_US),
                ScaledEvent::DayStart { day: day + 1 },
            );
        }
    }

    fn hour_seed(&mut self, day: u64, hour: u8, out: &mut Outbox<ScaledEvent>) {
        let cfg = &self.world.cfg;
        let (seed, p) = (cfg.seed, cfg.daily_login_prob);
        // Take the bucket out (keeping its capacity for the next day) and
        // replay each peer's login draw: the same content-keyed stream the
        // bucketing pass consumed, so the derived time is bit-identical to
        // what eager seeding would have scheduled.
        let mut bucket = std::mem::take(&mut self.login_buckets[hour as usize]);
        for &peer in &bucket {
            let mut rng = key_rng(seed, peer as u64, day, P_LOGIN);
            let logs_in = rng.chance(p);
            debug_assert!(logs_in, "bucketed peer must re-draw its login");
            let _ = logs_in;
            let t = SimTime(day * DAY_US + rng.below(DAY_US));
            debug_assert_eq!((t.as_micros() % DAY_US) / HOUR_US, hour as u64);
            out.schedule(
                t,
                ScaledEvent::Login {
                    peer,
                    day: day as u32,
                },
            );
        }
        bucket.clear();
        self.login_buckets[hour as usize] = bucket;
    }

    fn login(&mut self, at: SimTime, peer: u32, day: u32, out: &mut Outbox<ScaledEvent>) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let mut rng = key_rng(cfg.seed, peer as u64, day as u64, P_SESSION);
        // Sessions: 30 min .. ~12.5 h (background-mode clients stay up).
        let session_us = 1_800_000_000 + rng.below(43_200_000_000);
        let now_us = at.as_micros();
        let prev_until = self.online(peer);
        let until = now_us + session_us;
        self.set_online(peer, until);
        let region = world.region_of_peer(peer);
        self.ts_add(TS_LOGINS, region, now_us, 1);
        if prev_until >= now_us {
            // Re-login while still online: the peer stays one active
            // session, its end just moves — cancel the scheduled −1 and
            // re-post it at the new end.
            self.ts_level(region, prev_until, 1);
        } else {
            self.ts_level(region, now_us, 1);
        }
        self.ts_level(region, until, -1);

        let (lat, lon) = world.lat_lon(peer);
        let rec = LoginRecord {
            at,
            guid: world.guid(peer),
            ip: world.ip(peer, day as u64),
            asn: world.asn(peer),
            country: world.country(peer),
            lat,
            lon,
            uploads_enabled: world.uploads_enabled(peer),
            software_version: (hash64(cfg.seed, peer as u64, P_STATIC + 8) % 12) as u32,
            secondary_guids: Vec::new(),
        };
        let local = self.local_mut(region);
        local.digest.on_login(&rec);
        local.summary.on_login(&rec);
        local.logins += 1;

        // Downloads this session: geometric-ish knockdown around the mean.
        let mut p = cfg.downloads_per_login;
        let mut k = 0u32;
        while k < 8 && rng.chance(p.min(1.0)) {
            let t = at + SimDuration(rng.below(session_us));
            out.schedule(t, ScaledEvent::StartDownload { peer, day, k });
            k += 1;
            p *= 0.55;
        }
    }

    fn start_download(
        &mut self,
        at: SimTime,
        peer: u32,
        day: u32,
        k: u32,
        out: &mut Outbox<ScaledEvent>,
    ) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let region = world.region_of_peer(peer);
        let now_us = at.as_micros();
        if self.online(peer) < now_us {
            // Session truncated (churn burst) before this request fired.
            self.local_mut(region).skipped_offline += 1;
            return;
        }
        let mut rng = key_rng(
            cfg.seed,
            peer as u64,
            ((day as u64) << 4) | k as u64,
            P_DOWNLOAD,
        );
        // Zipf-flavoured catalog draw: log-uniform rank.
        let rank = ((cfg.objects as f64).powf(rng.f64()) as u64).min(cfg.objects - 1);
        let object = rank;
        let size = world.object_size(object);

        let hour = at.hour_of_day_local(REGION_TZ[region]) as usize;
        let avail = DIURNAL[hour];
        let pop = 1.0 / (1.0 + 4.0 * rank as f64 / cfg.objects as f64);
        let mut eta = 0.85 * pop * avail;

        let local = &self.locals[region - self.regions.start];
        let control_down = now_us < local.control_down_until;
        let dir_degraded = now_us < local.dir_degraded_until;
        let edge_down = now_us < local.edge_down_until;
        self.ts_add(TS_DL_STARTED, region, now_us, 1);
        if control_down {
            // Control crash symptom: this request proceeds without peer
            // sources at all (eta = 0 below) — the §3.8 edge-only mode.
            self.ts_add(TS_EDGE_ONLY, region, now_us, 1);
        }
        if control_down {
            eta = 0.0; // no source queries: edge-only degradation (§3.8)
        } else if dir_degraded {
            eta *= 0.3; // DN re-populating via paced RE-ADDs
        }
        eta = eta.min(0.95);

        let initial_peers = (eta * 40.0) as u32;
        let down_bps = world.down_mbps(peer) * 125_000.0;
        let mut outcome = 0u8;
        let (bytes_peers, bytes_infra);
        let mut rate = down_bps * (0.55 + 0.45 * avail);
        if edge_down {
            if eta <= 0.0 {
                // Control and edge both dark: nothing can serve this.
                outcome = 2;
                bytes_peers = 0;
                bytes_infra = 0;
            } else {
                bytes_peers = size; // peer-only, slower
                bytes_infra = 0;
                rate *= 0.6;
            }
        } else {
            bytes_peers = (size as f64 * eta) as u64;
            bytes_infra = size - bytes_peers;
        }
        if outcome == 0 && rng.chance(0.003) {
            outcome = if rng.chance(0.3) { 2 } else { 1 };
        }
        let nominal_us = ((size as f64 / rate) * 1e6) as u64 + rng.below(30_000_000) + 1;
        let dur_us = match outcome {
            1 | 2 => nominal_us / 3,
            _ => nominal_us,
        };
        let meta = DlMeta {
            object,
            size,
            bytes_infra,
            bytes_peers,
            started_us: now_us,
            outcome,
            initial_peers,
            day,
            k,
        };
        out.schedule(
            SimTime(now_us + dur_us),
            ScaledEvent::FinishDownload { peer, meta },
        );
    }

    fn finish_download(
        &mut self,
        at: SimTime,
        peer: u32,
        meta: DlMeta,
        out: &mut Outbox<ScaledEvent>,
    ) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let region = world.region_of_peer(peer);
        let finish_us = at.as_micros();
        let mut ended = finish_us;
        let mut outcome = meta.outcome;
        let mut bytes_infra = meta.bytes_infra;
        let mut bytes_peers = meta.bytes_peers;
        // The session may have ended — naturally or via a churn burst —
        // before the transfer finished: truncate to what was fetched.
        let online_until = self.online(peer);
        if online_until < finish_us && outcome == 0 {
            outcome = 3;
            ended = online_until.max(meta.started_us + 1);
            let frac =
                (ended - meta.started_us) as f64 / (finish_us - meta.started_us).max(1) as f64;
            bytes_infra = (bytes_infra as f64 * frac) as u64;
            bytes_peers = (bytes_peers as f64 * frac) as u64;
        } else if outcome == 1 || outcome == 2 {
            bytes_infra /= 3;
            bytes_peers /= 3;
        }
        let rec = DownloadRecord {
            guid: world.guid(peer),
            object: ObjectId(meta.object),
            cp: CpCode((meta.object % 40) as u32),
            size: ByteCount(meta.size),
            p2p_enabled: true,
            started: SimTime(meta.started_us),
            ended: SimTime(ended),
            bytes_infra: ByteCount(bytes_infra),
            bytes_peers: ByteCount(bytes_peers),
            outcome: match outcome {
                0 => DownloadOutcome::Completed,
                1 => DownloadOutcome::Failed {
                    system_related: false,
                },
                2 => DownloadOutcome::Failed {
                    system_related: true,
                },
                _ => DownloadOutcome::Abandoned,
            },
            initial_peers: meta.initial_peers,
            asn: world.asn(peer),
            country: world.country(peer),
            region: region as u8,
        };
        {
            let local = self.local_mut(region);
            local.digest.on_download(&rec);
            local.summary.on_download(&rec);
            local.downloads += 1;
            match outcome {
                0 => local.completed += 1,
                1 | 2 => local.failed += 1,
                _ => local.abandoned += 1,
            }
            local.bytes_infra += bytes_infra;
            local.bytes_peers += bytes_peers;
        }
        match outcome {
            0 => self.ts_add(TS_DL_COMPLETED, region, ended, 1),
            1 | 2 => self.ts_add(TS_DL_FAILED, region, ended, 1),
            _ => self.ts_add(TS_DL_ABANDONED, region, ended, 1),
        }
        self.ts_add(TS_BYTES_PEERS, region, ended, bytes_peers as i64);
        self.ts_add(TS_BYTES_INFRA, region, ended, bytes_infra as i64);

        // Attribute peer bytes to uploaders (§6.1 transfer tuples). The
        // transfer record belongs to the *uploader's* region stream, so
        // the routing key is which shard owns the uploader's peer index:
        // our own block emits here, anything else (remote region, or the
        // same region's other sub-shards) travels as cross-shard mail and
        // is emitted at barrier delivery.
        if bytes_peers == 0 {
            return;
        }
        let mut rng = key_rng(
            cfg.seed,
            peer as u64,
            ((meta.day as u64) << 4) | meta.k as u64,
            P_UPLOADERS,
        );
        let n_up = 1 + rng.index(3) as u64;
        let share = bytes_peers / n_up;
        let to_guid = world.guid(peer);
        let to_as = world.asn(peer);
        let to_country = world.country(peer);
        for i in 0..n_up {
            let bytes = if i == n_up - 1 {
                bytes_peers - share * (n_up - 1)
            } else {
                share
            };
            if bytes == 0 {
                continue;
            }
            let src_region = if rng.chance(cfg.cross_region_prob) {
                rng.index(Region::ALL.len())
            } else {
                region
            };
            let peers = world.region_peers(src_region);
            let from_peer = peers.start + rng.below((peers.end - peers.start) as u64) as u32;
            if (self.peer_lo..self.peer_hi).contains(&from_peer) {
                let t = TransferRecord {
                    from_guid: world.guid(from_peer),
                    to_guid,
                    from_as: world.asn(from_peer),
                    to_as,
                    from_country: world.country(from_peer),
                    to_country,
                    bytes: ByteCount(bytes),
                    object: ObjectId(meta.object),
                };
                let local = self.local_mut(src_region);
                local.digest.on_transfer(&t);
                local.summary.on_transfer(&t);
                local.transfers += 1;
                self.ts_add(TS_TRANSFERS, src_region, ended, 1);
            } else {
                out.send(
                    world.shard_of_peer(from_peer),
                    out.window_end(),
                    ScaledEvent::RemoteUpload {
                        region: src_region as u8,
                        from_peer,
                        to_guid: to_guid.0,
                        to_as: to_as.0,
                        to_country,
                        bytes,
                        object: meta.object,
                        at_us: ended,
                    },
                );
            }
        }
    }

    /// Is this shard region `r`'s *home* — the shard owning its first
    /// peer? A region fault's state applies in every overlapping
    /// sub-shard, but only the home shard logs the alert, so the merged
    /// report carries one line per fault regardless of the shard count.
    fn is_region_home(&self, r: usize) -> bool {
        let peers = self.world.region_peers(r);
        !peers.is_empty() && self.world.shard_of_peer(peers.start) == self.shard
    }

    fn fault(&mut self, at: SimTime, idx: u32) {
        let world = Arc::clone(&self.world);
        let cfg = &world.cfg;
        let ev = cfg.faults.events[idx as usize];
        let now_us = at.as_micros();
        let window = (now_us / TS_INTERVAL_US) as u32;
        match ev.kind {
            FaultKind::CnCrash { region } => {
                let r = region as usize;
                if self.regions.contains(&r) {
                    let home = self.is_region_home(r);
                    let until = now_us + 600_000_000;
                    self.local_mut(r).control_down_until = until;
                    // Every overlapping part marks the same span, so the
                    // OR-merged flag is identical at every shard count.
                    self.ts_flags(r, now_us, until, DEG_CONTROL);
                    if home {
                        self.ts_add(TS_CN_CRASHES, r, now_us, 1);
                        self.ts_add(TS_INJECTED, r, now_us, 1);
                        self.local_mut(r).alerts.push(ScaledAlert {
                            class: "cn_crash",
                            at_hours: ev.at_hours,
                            window,
                            region: r as u8,
                            detail: 0,
                        });
                    }
                }
            }
            FaultKind::DnWipe { region } => {
                let r = region as usize;
                if self.regions.contains(&r) {
                    let home = self.is_region_home(r);
                    let until = now_us + 1_800_000_000;
                    self.local_mut(r).dir_degraded_until = until;
                    self.ts_flags(r, now_us, until, DEG_DIRECTORY);
                    if home {
                        self.ts_add(TS_DN_WIPES, r, now_us, 1);
                        self.ts_add(TS_INJECTED, r, now_us, 1);
                        self.local_mut(r).alerts.push(ScaledAlert {
                            class: "dn_wipe",
                            at_hours: ev.at_hours,
                            window,
                            region: r as u8,
                            detail: 0,
                        });
                    }
                }
            }
            FaultKind::EdgeOutage { region, secs } => {
                let r = region as usize;
                if self.regions.contains(&r) {
                    let home = self.is_region_home(r);
                    let until = now_us + secs * 1_000_000;
                    self.local_mut(r).edge_down_until = until;
                    self.ts_flags(r, now_us, until, DEG_EDGE);
                    if home {
                        self.ts_add(TS_EDGE_OUTAGES, r, now_us, 1);
                        self.ts_add(TS_INJECTED, r, now_us, 1);
                        self.local_mut(r).alerts.push(ScaledAlert {
                            class: "edge_outage",
                            at_hours: ev.at_hours,
                            window,
                            region: r as u8,
                            detail: secs,
                        });
                    }
                }
            }
            FaultKind::ChurnBurst { fraction } => {
                // Count drops per *region* so the alert stays meaningful
                // when a shard block spans several regions; a region split
                // across sub-shards gets one line per part (merged in
                // shard order), each with that part's count.
                let mut dropped = vec![0u64; self.regions.len()];
                for peer in self.peer_lo..self.peer_hi {
                    let until = self.online(peer);
                    if until > now_us {
                        let mut rng = key_rng(cfg.seed, peer as u64, now_us, P_CHURN);
                        if rng.chance(fraction) {
                            self.set_online(peer, now_us);
                            let r = world.region_of_peer(peer);
                            // The session's end moves from `until` to now:
                            // cancel the scheduled −1 and re-post it here.
                            self.ts_level(r, until, 1);
                            self.ts_level(r, now_us, -1);
                            dropped[r - self.regions.start] += 1;
                        }
                    }
                }
                for r in self.regions.clone() {
                    let n = dropped[r - self.regions.start];
                    self.ts_add(TS_CHURN_OFFLINE, r, now_us, n as i64);
                    if self.is_region_home(r) {
                        // Class/injection counters once per region
                        // regardless of how many parts slice it.
                        self.ts_add(TS_CHURN_BURSTS, r, now_us, 1);
                        self.ts_add(TS_INJECTED, r, now_us, 1);
                    }
                    self.local_mut(r).alerts.push(ScaledAlert {
                        class: "churn_burst",
                        at_hours: ev.at_hours,
                        window,
                        region: r as u8,
                        detail: n,
                    });
                }
            }
        }
    }
}

impl ShardWorker for ScaledShard {
    type Event = ScaledEvent;

    fn handle(&mut self, at: SimTime, event: ScaledEvent, out: &mut Outbox<ScaledEvent>) {
        match event {
            ScaledEvent::DayStart { day } => self.day_start(at, day, out),
            ScaledEvent::HourSeed { day, hour } => self.hour_seed(day, hour, out),
            ScaledEvent::Login { peer, day } => self.login(at, peer, day, out),
            ScaledEvent::StartDownload { peer, day, k } => {
                self.start_download(at, peer, day, k, out)
            }
            ScaledEvent::FinishDownload { peer, meta } => self.finish_download(at, peer, meta, out),
            ScaledEvent::Fault { idx } => self.fault(at, idx),
            ScaledEvent::RemoteUpload {
                region,
                from_peer,
                to_guid,
                to_as,
                to_country,
                bytes,
                object,
                at_us,
            } => {
                let world = Arc::clone(&self.world);
                let t = TransferRecord {
                    from_guid: world.guid(from_peer),
                    to_guid: Guid(to_guid),
                    from_as: world.asn(from_peer),
                    to_as: AsNumber(to_as),
                    from_country: world.country(from_peer),
                    to_country,
                    bytes: ByteCount(bytes),
                    object: ObjectId(object),
                };
                let local = self.local_mut(region as usize);
                local.digest.on_transfer(&t);
                local.summary.on_transfer(&t);
                local.transfers += 1;
                local.remote_uploads_in += 1;
                // The transfer counts in its *origin* window (carried in
                // the mail) so the series matches the single-shard run;
                // only the mail tally itself is barrier-timed and is
                // declared K-variant in the catalog.
                self.ts_add(TS_TRANSFERS, region as usize, at_us, 1);
                self.ts_add(TS_MAIL, region as usize, at.as_micros(), 1);
            }
        }
    }
}

/// Per-region results: tallies, alert log, and record-stream digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionReport {
    /// Table-2 label.
    pub region: &'static str,
    /// Login records emitted.
    pub logins: u64,
    /// Download records emitted.
    pub downloads: u64,
    /// Completed downloads.
    pub completed: u64,
    /// Abandoned (incl. churn-truncated) downloads.
    pub abandoned: u64,
    /// Failed downloads.
    pub failed: u64,
    /// Requests skipped because the session had already been cut.
    pub skipped_offline: u64,
    /// Edge bytes served.
    pub bytes_infra: u64,
    /// Peer bytes served.
    pub bytes_peers: u64,
    /// Transfer records emitted (local + remote-in).
    pub transfers: u64,
    /// Cross-shard uploads credited to this region.
    pub remote_uploads_in: u64,
    /// Deterministic fault alert log, as structured records (rendered
    /// into the legacy report lines by [`ScaledAlert::render`]).
    pub alerts: Vec<ScaledAlert>,
    /// SHA-256 stream digests of this region's records. When the region
    /// is split across sub-shards this is the deterministic combination
    /// of the parts' digests (hash of the concatenated part digests, in
    /// shard order) — any byte divergence in any part still changes it.
    pub digest: DigestTriple,
}

/// Deterministically combine per-sub-shard digest triples into one
/// region-level triple: each channel hashes the concatenation of the
/// parts' 32-byte digests (in shard order), counts sum. A single part
/// passes through unchanged, so whole-region shards keep the familiar
/// fingerprint of their raw stream.
fn combine_digests(mut parts: Vec<DigestTriple>) -> DigestTriple {
    use netsession_core::hash::Sha256;
    match parts.len() {
        0 => DigestSink::new().finalize(),
        1 => parts.pop().expect("one part"),
        _ => {
            let chain = |pick: fn(&DigestTriple) -> &[u8; 32]| {
                let mut h = Sha256::new();
                for p in &parts {
                    h.update(pick(p));
                }
                h.finalize()
            };
            DigestTriple {
                downloads: chain(|p| &p.downloads.0),
                logins: chain(|p| &p.logins.0),
                transfers: chain(|p| &p.transfers.0),
                n_downloads: parts.iter().map(|p| p.n_downloads).sum(),
                n_logins: parts.iter().map(|p| p.n_logins).sum(),
                n_transfers: parts.iter().map(|p| p.n_transfers).sum(),
            }
        }
    }
}

/// The merged result of a scaled run — everything downstream analysis and
/// the determinism gates judge.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaledOutput {
    /// Table-1 summary, streamed (never materialized).
    pub summary: DatasetSummary,
    /// Global peer efficiency (§5.1).
    pub peer_efficiency: f64,
    /// Per-region reports in Table-2 order.
    pub regions: Vec<RegionReport>,
    /// Shards used.
    pub shards: usize,
    /// Region block each shard owns, as a "+"-joined label per shard
    /// (e.g. `"Europe"`, `"US East+US West"`). Deterministic geometry.
    pub shard_labels: Vec<String>,
    /// Resident peer population per shard (same geometry).
    pub shard_peers: Vec<u64>,
    /// Total events processed.
    pub events: u64,
    /// Window barriers crossed.
    pub windows: u64,
    /// Cross-shard messages exchanged.
    pub cross_messages: u64,
    /// Merged per-(metric, region) sim-hour series ([`TS_METRICS`]),
    /// present when [`ScaledConfig::timeseries`] was on. Byte-identical
    /// sequential vs parallel, and — bar the one declared K-variant
    /// metric — invariant in `--shards`.
    pub timeseries: Option<MergedSeries>,
}

impl ScaledOutput {
    /// Deterministic multi-line report — the byte string the 2-shard gate
    /// diffs against the sequential oracle. No wall-clock, no RSS: those
    /// are volatile and belong on stderr / bench sidecars.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "scaled run: {} logins, {} downloads ({} completed), peer_efficiency {:.4}",
            self.summary.log_entries - self.summary.downloads - self.transfers_total(),
            self.summary.downloads,
            self.completed_total(),
            self.peer_efficiency,
        );
        let _ = writeln!(
            s,
            "summary: guids={} urls={} ips={} locations={} ases={} countries={}",
            self.summary.guids,
            self.summary.urls,
            self.summary.ips,
            self.summary.locations,
            self.summary.ases,
            self.summary.countries
        );
        for r in &self.regions {
            let _ = writeln!(
                s,
                "{:>14}: logins={} dl={} ok={} ab={} fail={} peers_B={} infra_B={} tx={} remote_in={}",
                r.region,
                r.logins,
                r.downloads,
                r.completed,
                r.abandoned,
                r.failed,
                r.bytes_peers,
                r.bytes_infra,
                r.transfers,
                r.remote_uploads_in
            );
            let _ = writeln!(s, "{:>14}  {}", "", r.digest.fingerprint());
            for a in &r.alerts {
                let _ = writeln!(s, "{:>14}  alert {}", "", a.render());
            }
        }
        let _ = writeln!(
            s,
            "runner: shards={} events={} windows={} cross={}",
            self.shards, self.events, self.windows, self.cross_messages
        );
        s
    }

    fn completed_total(&self) -> u64 {
        self.regions.iter().map(|r| r.completed).sum()
    }

    fn transfers_total(&self) -> u64 {
        self.regions.iter().map(|r| r.transfers).sum()
    }
}

/// Run the scaled simulation. `parallel` picks the threaded window runner;
/// `false` is the sequential oracle the gates compare against. Results are
/// bit-identical either way. Per-shard runner counters are published into
/// `registry` when given.
pub fn run_scaled(
    cfg: &ScaledConfig,
    parallel: bool,
    registry: Option<&MetricsRegistry>,
) -> ScaledOutput {
    run_scaled_profiled(cfg, parallel, registry, None).0
}

/// [`run_scaled`] with an optional shard profiler riding along: the
/// profiler's deterministic channel sees every window barrier (and is
/// itself byte-identical between the sequential oracle and the threaded
/// run — property-tested in `tests/scaled_determinism.rs`), its volatile
/// channel collects the wall-clock timeline. Returned alongside the
/// output for the caller to render.
pub fn run_scaled_profiled(
    cfg: &ScaledConfig,
    parallel: bool,
    registry: Option<&MetricsRegistry>,
    profiler: Option<ShardProfiler>,
) -> (ScaledOutput, Option<ShardProfiler>) {
    let world = Arc::new(ScaledWorld::new(cfg.clone()));
    let shards: Vec<ScaledShard> = (0..cfg.shards)
        .map(|k| ScaledShard::new(Arc::clone(&world), k))
        .collect();
    let mut runner = ShardRunner::new(shards, cfg.window);
    for k in 0..cfg.shards {
        runner.seed(k, SimTime::ZERO, ScaledEvent::DayStart { day: 0 });
    }
    for (idx, f) in cfg.faults.events.iter().enumerate() {
        let at = SimTime(f.at_hours * 3_600_000_000);
        let ev = || ScaledEvent::Fault { idx: idx as u32 };
        match f.kind {
            FaultKind::CnCrash { region }
            | FaultKind::DnWipe { region }
            | FaultKind::EdgeOutage { region, .. } => {
                // A region fault must reach every sub-shard holding a
                // slice of the region's peer block.
                for k in world.shards_of_region(region as usize) {
                    runner.seed(k, at, ev());
                }
            }
            FaultKind::ChurnBurst { .. } => {
                for k in 0..cfg.shards {
                    runner.seed(k, at, ev());
                }
            }
        }
    }

    if let Some(p) = profiler {
        runner.attach_profiler(p);
    }

    if parallel {
        runner.run_parallel();
    } else {
        runner.run_sequential();
    }

    let profiler = runner.take_profiler();
    if let Some(reg) = registry {
        runner.publish_stats(reg);
    }
    let events = runner.stats().iter().map(|s| s.events).sum();
    let cross_messages = runner.stats().iter().map(|s| s.cross_sent).sum();
    let windows = runner.windows_run();

    // Merge sub-shard parts into the nine Table-2 regions, folding in
    // shard-index order so the merged alerts and combined digests are a
    // pure function of the program (not of thread scheduling). Regions
    // with no overlapping shard contribution (possible only when a tiny
    // population leaves a region peerless) come out empty, keeping the
    // report's nine-row shape at every scale.
    let mut summary = StreamingSummary::new();
    let mut regions: Vec<RegionReport> = (0..Region::ALL.len())
        .map(|r| RegionReport {
            region: Region::ALL[r].label(),
            logins: 0,
            downloads: 0,
            completed: 0,
            abandoned: 0,
            failed: 0,
            skipped_offline: 0,
            bytes_infra: 0,
            bytes_peers: 0,
            transfers: 0,
            remote_uploads_in: 0,
            alerts: Vec::new(),
            digest: DigestSink::new().finalize(),
        })
        .collect();
    let mut digest_parts: Vec<Vec<DigestTriple>> =
        (0..Region::ALL.len()).map(|_| Vec::new()).collect();
    let mut ts_parts: Vec<ShardSeries> = Vec::new();
    for mut shard in runner.into_workers() {
        if let Some(s) = shard.series.take() {
            ts_parts.push(s);
        }
        let base = shard.regions.start;
        for (i, local) in shard.locals.into_iter().enumerate() {
            summary.merge(&local.summary);
            let rep = &mut regions[base + i];
            rep.logins += local.logins;
            rep.downloads += local.downloads;
            rep.completed += local.completed;
            rep.abandoned += local.abandoned;
            rep.failed += local.failed;
            rep.skipped_offline += local.skipped_offline;
            rep.bytes_infra += local.bytes_infra;
            rep.bytes_peers += local.bytes_peers;
            rep.transfers += local.transfers;
            rep.remote_uploads_in += local.remote_uploads_in;
            rep.alerts.extend(local.alerts);
            digest_parts[base + i].push(local.digest.finalize());
        }
    }
    for (rep, parts) in regions.iter_mut().zip(digest_parts) {
        if !parts.is_empty() {
            rep.digest = combine_digests(parts);
        }
    }
    // Canonical shard-order merge: parts were collected in worker-index
    // order above, so the merged series is a pure function of the config.
    let timeseries = (!ts_parts.is_empty()).then(|| {
        let labels: Vec<String> = Region::ALL.iter().map(|r| r.label().to_string()).collect();
        merge_shards(&ts_parts, &labels)
    });
    let shard_labels = (0..cfg.shards).map(|k| world.shard_label(k)).collect();
    let shard_peers = (0..cfg.shards)
        .map(|k| {
            let p = world.shard_peers(k);
            (p.end - p.start) as u64
        })
        .collect();
    let out = ScaledOutput {
        peer_efficiency: summary.peer_efficiency(),
        summary: summary.summary(),
        regions,
        shards: cfg.shards,
        shard_labels,
        shard_peers,
        events,
        windows,
        cross_messages,
        timeseries,
    };
    (out, profiler)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaledConfig {
        ScaledConfig {
            peers: 3_000,
            objects: 400,
            days: 3,
            shards: 3,
            ..ScaledConfig::default()
        }
    }

    #[test]
    fn scaled_run_produces_work_in_every_region() {
        let out = run_scaled(&tiny(), false, None);
        assert_eq!(out.regions.len(), 9);
        assert!(out.summary.downloads > 0);
        assert!(out.regions.iter().all(|r| r.logins > 0));
        assert!(out.peer_efficiency > 0.0 && out.peer_efficiency < 1.0);
        assert!(out.cross_messages > 0, "cross-region uploads must flow");
    }

    #[test]
    fn report_is_replayable() {
        let a = run_scaled(&tiny(), false, None).report();
        let b = run_scaled(&tiny(), false, None).report();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential_at_tiny_scale() {
        let a = run_scaled(&tiny(), false, None);
        let b = run_scaled(&tiny(), true, None);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential_past_the_region_count() {
        let cfg = ScaledConfig {
            shards: 16,
            ..tiny()
        };
        let a = run_scaled(&cfg, false, None);
        let b = run_scaled(&cfg, true, None);
        assert_eq!(a, b);
        assert_eq!(a.shards, 16);
        assert_eq!(a.regions.len(), 9, "nine-region shape survives K > 9");
    }

    #[test]
    fn tallies_do_not_depend_on_the_shard_count() {
        // Sharding is pure geometry: per-region record *contents* are
        // content-keyed, so every tally (and the streamed summary) must be
        // invariant across K. Only stream ordering (digests), cross-shard
        // counters, and alert grouping may vary.
        let runs: Vec<_> = [1usize, 3, 16]
            .iter()
            .map(|&shards| run_scaled(&ScaledConfig { shards, ..tiny() }, true, None))
            .collect();
        for b in &runs[1..] {
            let a = &runs[0];
            assert_eq!(a.summary, b.summary, "summary varies with K");
            for (ra, rb) in a.regions.iter().zip(&b.regions) {
                assert_eq!(ra.logins, rb.logins, "{}", ra.region);
                assert_eq!(ra.downloads, rb.downloads, "{}", ra.region);
                assert_eq!(ra.completed, rb.completed, "{}", ra.region);
                assert_eq!(ra.abandoned, rb.abandoned, "{}", ra.region);
                assert_eq!(ra.failed, rb.failed, "{}", ra.region);
                assert_eq!(ra.skipped_offline, rb.skipped_offline, "{}", ra.region);
                assert_eq!(ra.bytes_infra, rb.bytes_infra, "{}", ra.region);
                assert_eq!(ra.bytes_peers, rb.bytes_peers, "{}", ra.region);
                assert_eq!(ra.transfers, rb.transfers, "{}", ra.region);
            }
        }
    }

    #[test]
    fn validate_rejects_bad_shard_counts() {
        let too_many = ScaledConfig {
            shards: MAX_SHARDS + 1,
            ..tiny()
        };
        assert!(too_many.validate().unwrap_err().contains("shards must be"));
        let more_shards_than_peers = ScaledConfig {
            peers: 10,
            shards: 11,
            ..tiny()
        };
        assert!(more_shards_than_peers
            .validate()
            .unwrap_err()
            .contains("must not exceed peers"));
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn region_blocks_partition_the_population() {
        let w = ScaledWorld::new(tiny());
        assert_eq!(w.region_starts[0], 0);
        assert_eq!(w.region_starts[9] as u64, w.cfg.peers);
        for r in 0..9 {
            for p in w.region_peers(r).step_by(97) {
                assert_eq!(w.region_of_peer(p), r);
            }
        }
    }

    #[test]
    fn shard_map_is_contiguous_and_total() {
        for shards in [1usize, 2, 4, 5, 9, 12, 16, 32, 100] {
            let w = ScaledWorld::new(ScaledConfig { shards, ..tiny() });
            let mut covered = 0u32;
            for k in 0..shards {
                let p = w.shard_peers(k);
                assert!(!p.is_empty(), "{shards} shards: shard {k} empty");
                assert_eq!(p.start, covered, "contiguity");
                covered = p.end;
                let r = w.regions_of_shard(k);
                assert_eq!(w.region_of_peer(p.start), r.start, "overlap start");
                assert_eq!(w.region_of_peer(p.end - 1), r.end - 1, "overlap end");
                for peer in p.clone().step_by(61) {
                    assert_eq!(w.shard_of_peer(peer), k, "shard_of_peer inverts");
                    assert!(r.contains(&w.region_of_peer(peer)));
                }
            }
            assert_eq!(covered as u64, w.cfg.peers);
            // shards_of_region is the inverse overlap map, and its union
            // covers every shard of a non-empty region.
            for r0 in 0..9 {
                for k in w.shards_of_region(r0) {
                    assert!(w.regions_of_shard(k).contains(&r0), "inverse overlap");
                }
            }
        }
    }

    #[test]
    fn sub_region_labels_tag_split_regions() {
        // 3000 peers, 16 shards: every shard block is smaller than most
        // regions, so split tags must appear and count their parts.
        let w = ScaledWorld::new(ScaledConfig {
            shards: 16,
            ..tiny()
        });
        let labels: Vec<String> = (0..16).map(|k| w.shard_label(k)).collect();
        assert!(
            labels.iter().any(|l| l.contains('[') && l.contains('/')),
            "split regions must be tagged: {labels:?}"
        );
        // Europe (35% of peers) spans several blocks; its parts must be
        // numbered 1..n in shard order.
        let europe: Vec<&String> = labels.iter().filter(|l| l.contains("Europe[")).collect();
        assert!(europe.len() >= 2, "Europe must split at K=16: {labels:?}");
        assert!(europe[0].contains("Europe[1/"));
    }
}
