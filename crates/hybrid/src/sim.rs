//! The hybrid-CDN month simulation.
//!
//! Drives the NetSession system over one synthetic month: peers come online
//! on their diurnal schedules and log into the control plane; requests
//! arrive per the workload; each download opens an always-on edge flow plus
//! swarm flows from control-plane-selected peers; the fluid network model
//! assigns max-min fair rates; users pause/abandon per the behaviour model;
//! completed objects enter peer caches and are registered with the DNs,
//! which is how swarms grow. The run emits a [`TraceDataset`] — the same
//! log shapes the paper's measurement study consumed.
//!
//! Fluid-model mechanics: request arrivals, peer offline events, and a
//! coarse tick (default 20 s) are the only points where the flow set
//! changes; bytes advance linearly between those points, and completion
//! times are interpolated exactly within the advance step, so per-download
//! speeds (Fig 4) are not quantized by the tick. Every handler refreshes
//! rates through [`FlowNet::recompute_dirty`], so only the swarm
//! components actually touched by an event are re-filled.

use crate::config::{FaultKind, ScenarioConfig};
use crate::identity::IdentityState;
use crate::setup::Scenario;
use netsession_control::directory::PeerRecord;
use netsession_control::selection::Querier;
use netsession_core::fxhash::FxHashMap;
use netsession_core::id::{Guid, ObjectId, VersionId};
use netsession_core::msg::{AuthToken, PeerAddr};
use netsession_core::rng::DetRng;
use netsession_core::time::{SimDuration, SimTime, TRACE_MONTH};
use netsession_core::units::{Bandwidth, ByteCount};
use netsession_logs::geodb::GeoInfoRef;
use netsession_logs::records::{DownloadOutcome, DownloadRecord, LoginRecord, TransferRecord};
use netsession_logs::TraceDataset;
use netsession_nat::matrix::{connectivity, Connectivity};
use netsession_obs::{
    AlertEngine, AlertEvent, Counter, Histogram, MetricsRegistry, RegistrySnapshot, SpanId,
    TraceCtx, TraceSink,
};
use netsession_sim::engine::EventQueue;
use netsession_sim::flownet::{FlowId, FlowNet, NodeId};
use netsession_sim::queue::{BinaryHeapSched, EventSched, TimingWheel};
use netsession_world::behaviour::UserModel;
use netsession_world::cloning::AnomalyPlan;
use netsession_world::geo::{region_of, WORLD_COUNTRIES};
use netsession_world::mobility::{MobilityConfig, MobilityPlan};

/// Tick granularity for the fluid model.
const TICK: SimDuration = SimDuration::from_secs(20);
/// Grace period after the month during which in-flight downloads may
/// finish before being cut off.
const TAIL: SimDuration = SimDuration::from_days(2);
/// Connection-success probabilities by traversal kind.
const P_DIRECT: f64 = 0.97;
const P_PUNCH: f64 = 0.85;
/// Minimum virtual time between alert-engine observations. Evaluation
/// piggybacks on whatever event pops next at-or-after the due time — no
/// events of its own enter the queue, so same-seed runs with and without
/// a rule change pop the identical event sequence.
const OBS_EVERY: SimDuration = SimDuration::from_secs(60);

#[derive(Clone, Debug)]
enum Event {
    Online(u32),
    Offline(u32),
    Arrival(u32),
    Tick,
    /// §3.8: a fleet-wide CN/DN software-update restart.
    ControlRestart,
    /// A scheduled infrastructure fault (index into `faults.events`).
    Fault(u32),
    /// Paced control-plane readmission of a dropped peer (§3.8: the
    /// reconnect limiter spreads the herd; until this fires the peer is
    /// control-disconnected and its downloads run edge-only).
    Readmit(u32),
    /// Paced RE-ADD response after a DN soft-state wipe: the peer
    /// re-registers its cached content (fate-sharing).
    ReAdd(u32),
    /// End of a region's edge outage: backstop flows re-attach.
    EdgeRecover(u32),
}

struct SourceFlow {
    peer: u32,
    flow: FlowId,
    bytes: f64,
    /// Open `peer_transfer` span, ended when the source detaches.
    span: SpanId,
}

struct Dl {
    peer: u32,
    object: ObjectId,
    version: VersionId,
    size: f64,
    p2p: bool,
    cap: Option<u32>,
    started: SimTime,
    token: AuthToken,
    edge_flow: Option<FlowId>,
    edge_bytes: f64,
    sources: Vec<SourceFlow>,
    /// Bytes from sources that already disconnected: (peer, bytes).
    finished_sources: Vec<(u32, f64)>,
    initial_peers: u32,
    abort_at: Option<SimTime>,
    env_fail_at_bytes: Option<f64>,
    sys_fail_at_bytes: Option<f64>,
    requeries: u32,
    region: u32,
    finished: Option<(SimTime, DownloadOutcome)>,
    /// Trace context whose span is this download's root span (the null
    /// context for unsampled downloads — every recording through it
    /// no-ops).
    ctx: TraceCtx,
    /// Open `edge_backstop` span, ended when the edge flow tears down.
    edge_span: SpanId,
}

impl Dl {
    /// Total bytes fetched so far across the edge flow, live sources, and
    /// already-detached sources. The hot loop computes this inline (fused
    /// with the rate pass); tests use this reference form.
    #[cfg(test)]
    fn done_bytes(&self) -> f64 {
        self.edge_bytes
            + self.sources.iter().map(|s| s.bytes).sum::<f64>()
            + self.finished_sources.iter().map(|(_, b)| b).sum::<f64>()
    }
}

/// Runtime peer state, struct-of-arrays: one parallel vector per field,
/// indexed by peer id. The hot loops (churn sweeps, source-availability
/// probes in `connect_sources`, offline upload teardown) each touch one or
/// two fields across many peers; packing those fields contiguously keeps
/// them cache-dense instead of striding over ~200-byte rows, and the
/// disjoint field borrows fall out of the borrow checker for free.
struct PeerTable {
    node: Vec<NodeId>,
    online: Vec<bool>,
    /// Control connection up. Tracks `online` except between a CN crash
    /// and the paced readmission: the machine is on (data plane works,
    /// cached copies still serve uploads) but it cannot query for peers
    /// or register content, so new downloads degrade to edge-only (§3.8).
    control_connected: Vec<bool>,
    uploads_enabled: Vec<bool>,
    pending_pref_changes: Vec<Vec<(SimTime, bool)>>,
    /// Complete cached versions and their expiry.
    cached: Vec<FxHashMap<ObjectId, (VersionId, SimTime)>>,
    identity: Vec<IdentityState>,
    mobility: Vec<MobilityPlan>,
    /// Current login site (index into mobility plan).
    site: Vec<usize>,
    active_uploads: Vec<u32>,
    active_download: Vec<Option<usize>>,
    logged_region: Vec<u32>,
}

impl PeerTable {
    fn with_capacity(n: usize) -> Self {
        PeerTable {
            node: Vec::with_capacity(n),
            online: Vec::with_capacity(n),
            control_connected: Vec::with_capacity(n),
            uploads_enabled: Vec::with_capacity(n),
            pending_pref_changes: Vec::with_capacity(n),
            cached: Vec::with_capacity(n),
            identity: Vec::with_capacity(n),
            mobility: Vec::with_capacity(n),
            site: Vec::with_capacity(n),
            active_uploads: Vec::with_capacity(n),
            active_download: Vec::with_capacity(n),
            logged_region: Vec::with_capacity(n),
        }
    }

    /// Append one peer row (offline, nothing cached, no activity).
    fn push(
        &mut self,
        node: NodeId,
        uploads_enabled: bool,
        pending_pref_changes: Vec<(SimTime, bool)>,
        identity: IdentityState,
        mobility: MobilityPlan,
    ) {
        self.node.push(node);
        self.online.push(false);
        self.control_connected.push(false);
        self.uploads_enabled.push(uploads_enabled);
        self.pending_pref_changes.push(pending_pref_changes);
        self.cached.push(FxHashMap::default());
        self.identity.push(identity);
        self.mobility.push(mobility);
        self.site.push(0);
        self.active_uploads.push(0);
        self.active_download.push(None);
        self.logged_region.push(0);
    }

    fn len(&self) -> usize {
        self.node.len()
    }
}

/// Aggregate run statistics (sanity numbers next to the dataset).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Downloads completed.
    pub completed: u64,
    /// Abandoned by the user.
    pub abandoned: u64,
    /// Failed, system-related.
    pub failed_system: u64,
    /// Failed, other causes.
    pub failed_env: u64,
    /// Never finished by the cutoff.
    pub cut_off: u64,
    /// Total p2p content bytes moved.
    pub p2p_bytes: u64,
    /// Total edge content bytes moved.
    pub edge_bytes: u64,
    /// Peer connection attempts that failed traversal.
    pub punch_failures: u64,
    /// Re-queries issued (§3.7's "additional queries").
    pub requeries: u64,
    /// Logins processed.
    pub logins: u64,
}

/// Result of a run.
pub struct SimOutput {
    /// The production-style logs.
    pub dataset: TraceDataset,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// The scenario in its end-of-month state (population, catalog, AS
    /// universe, control plane) — several analyses join against it.
    pub scenario: Scenario,
    /// Telemetry recorded during the run (deterministic counters and
    /// histograms, the event ring, and wall-clock timings in the volatile
    /// section).
    pub metrics: MetricsRegistry,
    /// Download-lifecycle spans sampled during the run (1-in-N per
    /// `ScenarioConfig::obs.trace_sample_every`), exportable as
    /// Chrome-trace/Perfetto JSON. Deterministic: all timestamps are
    /// virtual sim time and IDs come from a monotone counter.
    pub trace: TraceSink,
    /// Raise/clear transitions from the [`crate::alerts::standard_rules`]
    /// engine, evaluated over virtual time every [`OBS_EVERY`] of sim
    /// time. Deterministic: timestamps are virtual, and a fault-free run
    /// produces an empty log (no `hybrid.fault.*` counter ever exists).
    pub alerts: Vec<AlertEvent>,
}

/// The simulation driver.
pub struct HybridSim {
    scenario: Scenario,
    rng: DetRng,
    user_model: UserModel,
    metrics: MetricsRegistry,
    trace: TraceSink,
}

impl HybridSim {
    /// Create from a built scenario. The event-ring depth and the trace
    /// sampling rate come from the scenario's `obs` section.
    pub fn new(scenario: Scenario) -> Self {
        let rng = DetRng::seeded(scenario.config.seed ^ 0x73696d);
        let metrics = MetricsRegistry::with_event_capacity(scenario.config.obs.event_ring_capacity);
        let trace = TraceSink::new(scenario.config.obs.trace_sample_every);
        HybridSim {
            scenario,
            rng,
            user_model: UserModel::default(),
            metrics,
            trace,
        }
    }

    /// Record the run's telemetry into `registry` instead of the sim's own
    /// private registry. Instrumentation is strictly passive — attaching a
    /// registry never changes simulated behaviour or the produced dataset.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = registry.clone();
        self
    }

    /// Record download traces into `sink` instead of the sim's own sink.
    /// Sharing one sink across runs (sweeps, ablations) keeps sampling
    /// deterministic — the trace counter simply continues. Passive, like
    /// `with_metrics`.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = sink.clone();
        self
    }

    /// Convenience: build and run a config.
    pub fn run_config(config: ScenarioConfig) -> SimOutput {
        HybridSim::new(Scenario::build(config)).run()
    }

    /// Build and run a config, recording telemetry into a caller-supplied
    /// registry. Lets multi-run experiments (sweeps, ablations) accumulate
    /// metrics from every run into one sidecar.
    pub fn run_config_with(config: ScenarioConfig, registry: &MetricsRegistry) -> SimOutput {
        HybridSim::new(Scenario::build(config))
            .with_metrics(registry)
            .run()
    }

    /// Build and run a config, recording into caller-supplied metrics
    /// *and* trace sinks (multi-run experiments accumulate both).
    pub fn run_config_traced(
        config: ScenarioConfig,
        registry: &MetricsRegistry,
        sink: &TraceSink,
    ) -> SimOutput {
        HybridSim::new(Scenario::build(config))
            .with_metrics(registry)
            .with_trace(sink)
            .run()
    }

    /// Run the month and produce the trace.
    pub fn run(self) -> SimOutput {
        self.run_with_sched::<TimingWheel<Event>>()
    }

    /// Run on the binary-heap oracle queue instead of the default timing
    /// wheel. The output must be bit-identical to [`HybridSim::run`] — the
    /// A/B macro benchmark asserts exactly that while timing both backends.
    pub fn run_with_oracle_queue(self) -> SimOutput {
        self.run_with_sched::<BinaryHeapSched<Event>>()
    }

    /// The event loop, generic over the queue storage backend. The backend
    /// affects wall-clock only: every implementation of [`EventSched`] pops
    /// in the same deterministic `(time, seq)` order.
    fn run_with_sched<S: EventSched<Event> + Default>(mut self) -> SimOutput {
        let n_peers = self.scenario.population.len();
        let metrics = self.metrics.clone();
        let trace = self.trace.clone();
        trace.attach_metrics(&metrics);
        self.scenario.plane.attach_metrics(&metrics);
        for edge in &mut self.scenario.edges {
            edge.attach_metrics(&metrics);
        }
        let mut net = FlowNet::new().with_metrics(&metrics).with_trace(&trace);
        let mut queue: EventQueue<Event, S> = EventQueue::new().with_metrics(&metrics);
        let mut dataset = TraceDataset::default();
        let mut stats = RunStats::default();

        // --- Static per-peer runtime state.
        let mob_cfg = MobilityConfig::default();
        let anomaly_plan = AnomalyPlan::default();
        let mut id_rng = self.rng.split(1);
        let mut mob_rng = self.rng.split(2);
        let mut sched_rng = self.rng.split(3);
        let mut beh_rng = self.rng.split(4);
        let mut run_rng = self.rng.split(5);
        // Seeded independently (not split from the parent) so that runs
        // without a fault schedule keep byte-identical streams with
        // pre-fault-injection builds.
        let mut churn_rng = DetRng::seeded(self.scenario.config.seed ^ 0x4348_5552_4e21);

        // Clone groups share a master image.
        let mut masters: FxHashMap<u32, netsession_world::cloning::InstallationState> =
            FxHashMap::default();
        let mut peers = PeerTable::with_capacity(n_peers);
        for spec in &self.scenario.population.peers {
            let up_frac = self.scenario.config.transfer.upload_rate_fraction;
            let node = net.add_node(
                Bandwidth::from_bytes_per_sec(spec.up.bytes_per_sec() * up_frac),
                spec.down,
            );
            let identity = match spec.clone_group {
                Some(g) => {
                    let master = masters
                        .entry(g)
                        .or_insert_with(|| IdentityState::master_image(3, &mut id_rng))
                        .clone();
                    IdentityState::cloned_from(&master)
                }
                None => match anomaly_plan.sample(&mut id_rng) {
                    netsession_world::cloning::AnomalyKind::None => IdentityState::normal(),
                    kind => IdentityState::with_anomaly(kind, 2 + id_rng.index(6) as u64),
                },
            };
            let mobility = MobilityPlan::generate(
                spec,
                &self.scenario.population.as_model,
                &mob_cfg,
                &mut mob_rng,
            );
            // Table-3 setting changes, scheduled at random trace times.
            let changes = self
                .user_model
                .sample_setting_changes(spec.uploads_enabled, &mut beh_rng);
            let mut pending = Vec::new();
            let mut setting = spec.uploads_enabled;
            for _ in 0..changes {
                setting = !setting;
                pending.push((
                    SimTime((beh_rng.f64() * TRACE_MONTH.as_micros() as f64) as u64),
                    setting,
                ));
            }
            pending.sort_by_key(|(t, _)| *t);
            peers.push(node, spec.uploads_enabled, pending, identity, mobility);
        }

        // --- Pre-seed: history before the trace month left copies of
        // popular p2p objects on upload-enabled peers.
        {
            let mut seed_rng = self.rng.split(6);
            let total_pop: f64 = self
                .scenario
                .catalog
                .objects()
                .iter()
                .map(|o| o.popularity)
                .sum();
            let downloads = self.scenario.config.workload.downloads as f64;
            let enabled: Vec<u32> = self
                .scenario
                .population
                .peers
                .iter()
                .filter(|p| p.uploads_enabled)
                .map(|p| p.index.0)
                .collect();
            if !enabled.is_empty() {
                for obj in self.scenario.catalog.objects() {
                    if !obj.policy.p2p_enabled {
                        continue;
                    }
                    let expected = obj.popularity / total_pop * downloads;
                    let copies = ((expected * 1.2) as usize).clamp(30, 150);
                    for _ in 0..copies {
                        let p = enabled[seed_rng.index(enabled.len())];
                        let expiry = SimTime::ZERO
                            + SimDuration::from_hours(
                                self.scenario.config.transfer.cache_ttl_hours as u64,
                            );
                        peers.cached[p as usize].insert(obj.id, (obj.version(), expiry));
                    }
                }
            }
        }

        // --- Schedule logins: per peer, per day, with daily_login_prob.
        let days = TRACE_MONTH.as_micros() / 86_400_000_000;
        for (i, spec) in self.scenario.population.peers.iter().enumerate() {
            for day in 0..days {
                if !sched_rng.chance(self.scenario.config.daily_login_prob) {
                    continue;
                }
                let start_local = spec.online_start_hour + sched_rng.range_f64(-0.5, 0.5);
                let len = spec.online_hours * self.scenario.config.session_mode_factor;
                let start_gmt = (start_local - spec.tz_offset as f64).rem_euclid(24.0);
                let online_at = SimTime::ZERO
                    + SimDuration::from_days(day)
                    + SimDuration::from_secs_f64(start_gmt * 3600.0);
                let offline_at = online_at + SimDuration::from_secs_f64(len.max(0.25) * 3600.0);
                queue.schedule(online_at, Event::Online(i as u32));
                queue.schedule(offline_at, Event::Offline(i as u32));
            }
        }

        // --- Schedule request arrivals.
        for (i, req) in self.scenario.workload.requests.iter().enumerate() {
            queue.schedule(req.at, Event::Arrival(i as u32));
        }

        // --- Optional §3.8 control-plane restart.
        if let Some(day) = self.scenario.config.control_restart_day {
            queue.schedule(
                SimTime::ZERO + SimDuration::from_days(day) + SimDuration::from_hours(3),
                Event::ControlRestart,
            );
        }

        // --- Scheduled infrastructure faults (§3.8 chaos campaign).
        for (i, f) in self.scenario.config.faults.events.iter().enumerate() {
            queue.schedule(
                SimTime::ZERO + SimDuration::from_hours(f.at_hours),
                Event::Fault(i as u32),
            );
        }

        // --- Edge nodes per region.
        let edge_nodes: Vec<NodeId> = (0..self.scenario.plane.regions())
            .map(|_| net.add_infinite_node())
            .collect();

        // --- Main loop state.
        let mut guid_owner: FxHashMap<Guid, u32> = FxHashMap::default();
        let mut dls: Vec<Dl> = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        let mut last_advance = SimTime::ZERO;
        // Shared per-source rate cache for `advance` (see there).
        let mut adv_rates: Vec<f64> = Vec::new();
        let mut tick_scheduled = false;
        let cutoff = SimTime::ZERO + TRACE_MONTH + TAIL;
        // Regions whose edge servers are currently dark (EdgeOutage).
        let mut edge_down = vec![false; self.scenario.plane.regions() as usize];

        // Per-event-type instruments, pre-created so the hot loop does no
        // name lookups. Wall-clock timings go to the volatile section (they
        // differ run-to-run and must not pollute the deterministic snapshot).
        let ev_counters = [
            metrics.counter("hybrid.ev_online"),
            metrics.counter("hybrid.ev_offline"),
            metrics.counter("hybrid.ev_arrival"),
            metrics.counter("hybrid.ev_tick"),
            metrics.counter("hybrid.ev_control_restart"),
            metrics.counter("hybrid.ev_fault"),
            metrics.counter("hybrid.ev_readmit"),
            metrics.counter("hybrid.ev_readd"),
            metrics.counter("hybrid.ev_edge_recover"),
        ];
        // §3.8 alerting over virtual time: the same AlertEngine the live
        // monitor server runs over wall-clock scrapes, fed deterministic
        // registry snapshots at >= OBS_EVERY intervals.
        let mut alert_engine = AlertEngine::new(crate::alerts::standard_rules());
        let mut next_obs = SimTime::ZERO;
        // Reusable scrape buffer: the alert engine observes >= once per
        // OBS_EVERY of virtual time (~43k scrapes per month); refreshing in
        // place skips rebuilding three String-keyed maps each time.
        let mut obs_snap = RegistrySnapshot::default();
        let hot = HotInstruments::from(&metrics);
        let ev_timings = [
            metrics.volatile_histogram("hybrid.ev_online_ns"),
            metrics.volatile_histogram("hybrid.ev_offline_ns"),
            metrics.volatile_histogram("hybrid.ev_arrival_ns"),
            metrics.volatile_histogram("hybrid.ev_tick_ns"),
            metrics.volatile_histogram("hybrid.ev_control_restart_ns"),
            metrics.volatile_histogram("hybrid.ev_fault_ns"),
            metrics.volatile_histogram("hybrid.ev_readmit_ns"),
            metrics.volatile_histogram("hybrid.ev_readd_ns"),
            metrics.volatile_histogram("hybrid.ev_edge_recover_ns"),
        ];

        while let Some((t, event)) = queue.pop() {
            if t > cutoff {
                break;
            }
            if t >= next_obs {
                // Scalars only: every alert rule kind reads counters and
                // gauges (invariant pinned in obs's alert tests), so the
                // ~43k in-loop scrapes skip histogram summarization.
                metrics.scrape_scalars_into(&mut obs_snap);
                alert_engine.observe(t.as_micros(), &obs_snap);
                next_obs = t + OBS_EVERY;
            }
            let ev_kind = match &event {
                Event::Online(_) => 0,
                Event::Offline(_) => 1,
                Event::Arrival(_) => 2,
                Event::Tick => 3,
                Event::ControlRestart => 4,
                Event::Fault(_) => 5,
                Event::Readmit(_) => 6,
                Event::ReAdd(_) => 7,
                Event::EdgeRecover(_) => 8,
            };
            ev_counters[ev_kind].incr();
            let ev_started = std::time::Instant::now();
            match event {
                Event::Online(p) => {
                    self.login(
                        p,
                        t,
                        &mut peers,
                        &mut guid_owner,
                        &mut dataset,
                        &mut stats,
                        &mut run_rng,
                    );
                }
                Event::Offline(p) => {
                    advance(&mut dls, &active, &net, last_advance, t, &mut adv_rates);
                    last_advance = t;
                    self.peer_offline(p, t, &mut peers, &mut net, &mut dls, &active);
                    process_finished(
                        &mut dls,
                        &mut active,
                        &mut peers,
                        &mut net,
                        &mut self.scenario,
                        &mut dataset,
                        &mut stats,
                        &hot,
                        &trace,
                        t,
                    );
                    net.recompute_dirty();
                }
                Event::Arrival(i) => {
                    advance(&mut dls, &active, &net, last_advance, t, &mut adv_rates);
                    last_advance = t;
                    self.start_download(
                        i as usize,
                        t,
                        &mut peers,
                        &mut guid_owner,
                        &mut net,
                        &edge_nodes,
                        &edge_down,
                        &mut dls,
                        &mut active,
                        &mut dataset,
                        &mut stats,
                        &hot,
                        &mut run_rng,
                    );
                    process_finished(
                        &mut dls,
                        &mut active,
                        &mut peers,
                        &mut net,
                        &mut self.scenario,
                        &mut dataset,
                        &mut stats,
                        &hot,
                        &trace,
                        t,
                    );
                    net.recompute_dirty();
                    if !tick_scheduled && !active.is_empty() {
                        queue.schedule(t + TICK, Event::Tick);
                        tick_scheduled = true;
                    }
                }
                Event::ControlRestart => {
                    metrics.record_event(
                        t.as_micros(),
                        "hybrid",
                        "control_restart",
                        "fleet-wide CN/DN restart: connections dropped, DN soft \
                         state wiped, paced readmission + RE-ADD recovery",
                    );
                    // §3.8: every CN and DN restarts "in a short timeframe".
                    // Connections drop, DN soft state is wiped, and the
                    // whole fleet reconnects through the rate limiter — the
                    // paced readmission re-registers each peer's cache
                    // (fate-sharing), repopulating the directories. Until a
                    // peer's Readmit fires its downloads run edge-only.
                    let fctx = trace.start_trace_always("control_restart", "fault", t.as_micros());
                    let mut dropped = 0u64;
                    let mut last = t;
                    for region in 0..self.scenario.plane.regions() {
                        let _ = self.scenario.plane.fail_dn(region);
                        for (guid, at) in self.scenario.plane.fail_cn(region, t) {
                            let Some(&p) = guid_owner.get(&guid) else {
                                continue;
                            };
                            if !peers.online[p as usize] {
                                continue;
                            }
                            peers.control_connected[p as usize] = false;
                            queue.schedule(at, Event::Readmit(p));
                            dropped += 1;
                            last = last.max(at);
                        }
                    }
                    metrics
                        .counter("hybrid.fault.peers_disconnected")
                        .add(dropped);
                    trace.add_attr(fctx.span, "dropped", dropped);
                    // The span covers the paced reconnect wave.
                    trace.end_span(fctx.span, last.as_micros());
                }
                Event::Fault(i) => {
                    // Faults mutate the flow set; settle transfers first.
                    advance(&mut dls, &active, &net, last_advance, t, &mut adv_rates);
                    last_advance = t;
                    let fault = self.scenario.config.faults.events[i as usize];
                    metrics.counter("hybrid.fault.injected").incr();
                    metrics.record_event_with(t.as_micros(), "hybrid", "fault", || {
                        format!("{:?}", fault.kind)
                    });
                    match fault.kind {
                        FaultKind::CnCrash { region } => {
                            metrics.counter("hybrid.fault.cn_crashes").incr();
                            let fctx =
                                trace.start_trace_always("fault_cn_crash", "fault", t.as_micros());
                            trace.add_attr(fctx.span, "region", region as u64);
                            let mut dropped = 0u64;
                            let mut last = t;
                            for (guid, at) in self.scenario.plane.fail_cn(region, t) {
                                let Some(&p) = guid_owner.get(&guid) else {
                                    continue;
                                };
                                if !peers.online[p as usize] {
                                    continue;
                                }
                                peers.control_connected[p as usize] = false;
                                queue.schedule(at, Event::Readmit(p));
                                dropped += 1;
                                last = last.max(at);
                            }
                            metrics
                                .counter("hybrid.fault.peers_disconnected")
                                .add(dropped);
                            trace.add_attr(fctx.span, "dropped", dropped);
                            // Span covers the paced reconnect wave (§3.8
                            // "smooth recovery").
                            trace.end_span(fctx.span, last.as_micros());
                        }
                        FaultKind::DnWipe { region } => {
                            metrics.counter("hybrid.fault.dn_wipes").incr();
                            let fctx =
                                trace.start_trace_always("fault_dn_wipe", "fault", t.as_micros());
                            trace.add_attr(fctx.span, "region", region as u64);
                            let mut asked = 0u64;
                            let mut last = t;
                            for guid in self.scenario.plane.fail_dn(region) {
                                let Some(&p) = guid_owner.get(&guid) else {
                                    continue;
                                };
                                if !peers.online[p as usize] || !peers.uploads_enabled[p as usize] {
                                    continue;
                                }
                                let at = self.scenario.plane.pace_recovery(t);
                                queue.schedule(at, Event::ReAdd(p));
                                asked += 1;
                                last = last.max(at);
                            }
                            trace.add_attr(fctx.span, "readds_requested", asked);
                            trace.end_span(fctx.span, last.as_micros());
                        }
                        FaultKind::EdgeOutage { region, secs } => {
                            metrics.counter("hybrid.fault.edge_outages").incr();
                            let fctx = trace.start_trace_always(
                                "fault_edge_outage",
                                "fault",
                                t.as_micros(),
                            );
                            trace.add_attr(fctx.span, "region", region as u64);
                            trace.add_attr(fctx.span, "secs", secs);
                            edge_down[region as usize] = true;
                            let mut cut = 0u64;
                            for id in &active {
                                let dl = &mut dls[*id];
                                if dl.region != region || dl.finished.is_some() {
                                    continue;
                                }
                                if let Some(f) = dl.edge_flow.take() {
                                    net.set_trace_scope(dl.ctx, t.as_micros());
                                    net.remove_flow(f);
                                    net.clear_trace_scope();
                                    if dl.edge_span != SpanId::NONE {
                                        trace.add_attr(
                                            dl.edge_span,
                                            "bytes_at_cut",
                                            dl.edge_bytes as u64,
                                        );
                                        trace.add_attr(dl.edge_span, "end_reason", "edge_outage");
                                        trace.end_span(dl.edge_span, t.as_micros());
                                        dl.edge_span = SpanId::NONE;
                                    }
                                    cut += 1;
                                }
                            }
                            metrics.counter("hybrid.fault.edge_flows_cut").add(cut);
                            trace.add_attr(fctx.span, "flows_cut", cut);
                            let until = t + SimDuration::from_secs(secs);
                            trace.end_span(fctx.span, until.as_micros());
                            queue.schedule(until, Event::EdgeRecover(region));
                        }
                        FaultKind::ChurnBurst { fraction } => {
                            metrics.counter("hybrid.fault.churn_bursts").incr();
                            let fctx = trace.start_trace_always(
                                "fault_churn_burst",
                                "fault",
                                t.as_micros(),
                            );
                            let mut gone = 0u64;
                            for p in 0..peers.len() as u32 {
                                if !peers.online[p as usize]
                                    || peers.active_download[p as usize].is_some()
                                {
                                    continue;
                                }
                                if !churn_rng.chance(fraction) {
                                    continue;
                                }
                                self.peer_offline(p, t, &mut peers, &mut net, &mut dls, &active);
                                gone += 1;
                            }
                            metrics.counter("hybrid.fault.churn_offline").add(gone);
                            trace.add_attr(fctx.span, "peers_offline", gone);
                            trace.end_span(fctx.span, t.as_micros());
                        }
                    }
                    process_finished(
                        &mut dls,
                        &mut active,
                        &mut peers,
                        &mut net,
                        &mut self.scenario,
                        &mut dataset,
                        &mut stats,
                        &hot,
                        &trace,
                        t,
                    );
                    net.recompute_dirty();
                }
                Event::Readmit(p) => {
                    self.control_readmit(p, t, &mut peers);
                }
                Event::ReAdd(p) => {
                    self.control_readd(p, t, &peers);
                }
                Event::EdgeRecover(region) => {
                    advance(&mut dls, &active, &net, last_advance, t, &mut adv_rates);
                    last_advance = t;
                    edge_down[region as usize] = false;
                    let mut restored = 0u64;
                    if self.scenario.config.edge_backstop {
                        for id in &active {
                            let dl = &mut dls[*id];
                            if dl.region != region
                                || dl.finished.is_some()
                                || dl.edge_flow.is_some()
                            {
                                continue;
                            }
                            let downlink = self.scenario.population.peers[dl.peer as usize].down;
                            net.set_trace_scope(dl.ctx, t.as_micros());
                            dl.edge_flow = Some(net.add_flow(
                                edge_nodes[region as usize],
                                peers.node[dl.peer as usize],
                                None,
                            ));
                            net.clear_trace_scope();
                            dl.edge_span =
                                trace.span(dl.ctx, "edge_backstop", "edge", t.as_micros());
                            trace.add_attr(dl.edge_span, "restored", true);
                            update_edge_ceil(dl, downlink, &mut net);
                            restored += 1;
                        }
                    }
                    metrics
                        .counter("hybrid.fault.edge_flows_restored")
                        .add(restored);
                    metrics.record_event_with(t.as_micros(), "hybrid", "edge_recover", || {
                        format!("region {region}: {restored} backstop flows re-attached")
                    });
                    net.recompute_dirty();
                }
                Event::Tick => {
                    advance(&mut dls, &active, &net, last_advance, t, &mut adv_rates);
                    last_advance = t;
                    process_finished(
                        &mut dls,
                        &mut active,
                        &mut peers,
                        &mut net,
                        &mut self.scenario,
                        &mut dataset,
                        &mut stats,
                        &hot,
                        &trace,
                        t,
                    );
                    self.requery(
                        t,
                        &mut peers,
                        &guid_owner,
                        &mut net,
                        &mut dls,
                        &active,
                        &mut stats,
                        &hot,
                        &mut run_rng,
                    );
                    // Rates must be refreshed whenever the tick changed the
                    // flow set — a finished download tearing flows down OR
                    // a requery connecting new sources / retightening the
                    // edge ceiling. (Gating this on "a download finished"
                    // used to leave requery-added flows at 0 B/s for many
                    // ticks.) The incremental path is a no-op on the common
                    // quiet tick where nothing was dirtied.
                    net.recompute_dirty();
                    if active.is_empty() {
                        tick_scheduled = false;
                    } else {
                        queue.schedule(t + TICK, Event::Tick);
                    }
                }
            }
            ev_timings[ev_kind].record(ev_started.elapsed().as_nanos() as u64);
        }

        // Cut off whatever is still in flight.
        for id in active.clone() {
            let dl = &mut dls[id];
            dl.finished = Some((cutoff, DownloadOutcome::Abandoned));
            stats.cut_off += 1;
        }
        process_finished(
            &mut dls,
            &mut active,
            &mut peers,
            &mut net,
            &mut self.scenario,
            &mut dataset,
            &mut stats,
            &hot,
            &trace,
            cutoff,
        );

        // DN registration log.
        let mut reg: FxHashMap<VersionId, u64> = FxHashMap::default();
        for obj in self.scenario.catalog.objects() {
            let n = self.scenario.plane.registrations_of(obj.version());
            if n > 0 {
                reg.insert(obj.version(), n);
            }
        }
        dataset.registrations = reg.into_iter().collect();
        dataset.registrations.sort_by_key(|(v, _)| *v);

        // Final observation at the cutoff so alerts that went quiet near
        // the end of the month still record their clear transition.
        metrics.scrape_scalars_into(&mut obs_snap);
        alert_engine.observe(cutoff.as_micros(), &obs_snap);

        SimOutput {
            dataset,
            stats,
            scenario: self.scenario,
            metrics,
            trace,
            alerts: alert_engine.log().to_vec(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn login(
        &mut self,
        p: u32,
        t: SimTime,
        peers: &mut PeerTable,
        guid_owner: &mut FxHashMap<Guid, u32>,
        dataset: &mut TraceDataset,
        stats: &mut RunStats,
        rng: &mut DetRng,
    ) {
        let spec = &self.scenario.population.peers[p as usize];
        let i = p as usize;
        if peers.online[i] {
            return;
        }
        // Apply due preference changes.
        while let Some((when, setting)) = peers.pending_pref_changes[i].first().copied() {
            if when <= t {
                peers.uploads_enabled[i] = setting;
                peers.pending_pref_changes[i].remove(0);
            } else {
                break;
            }
        }
        // Pick the login site.
        let site_idx = {
            let mobility = &peers.mobility[i];
            let site = mobility.sample_site(rng);
            mobility.sites.iter().position(|s| s == site).unwrap_or(0)
        };
        peers.site[i] = site_idx;
        let site = &peers.mobility[i].sites[site_idx];
        let country = &WORLD_COUNTRIES[site.country];
        let region = region_of(country, &country.cities[site.city]).index() as u32;
        peers.logged_region[i] = region;
        peers.online[i] = true;
        peers.control_connected[i] = true;
        guid_owner.insert(spec.guid, p);

        let sguids = peers.identity[i].on_login(rng);
        self.scenario.plane.login(
            region,
            spec.guid,
            PeerAddr {
                ip: site.ip,
                port: 8443,
            },
            spec.nat,
            peers.uploads_enabled[i],
            40_100,
            sguids.clone(),
            t,
        );
        dataset.geodb.record(
            site.ip,
            &GeoInfoRef {
                country_code: country.iso,
                city: country.cities[site.city].name,
                lat: site.lat,
                lon: site.lon,
                tz_offset: country.tz_offset,
                asn: site.asn,
                country_idx: site.country as u16,
                region_idx: region as u8,
            },
        );
        dataset.logins.push(LoginRecord {
            at: t,
            guid: spec.guid,
            ip: site.ip,
            asn: site.asn,
            country: site.country as u16,
            lat: site.lat,
            lon: site.lon,
            uploads_enabled: peers.uploads_enabled[i],
            software_version: 40_100,
            secondary_guids: sguids,
        });
        stats.logins += 1;

        // Register shareable cache contents.
        if peers.uploads_enabled[i] {
            let record = PeerRecord {
                guid: spec.guid,
                addr: PeerAddr {
                    ip: site.ip,
                    port: 8443,
                },
                asn: site.asn,
                area: site.country as u16,
                zone: region as u8,
                nat: spec.nat,
            };
            let versions: Vec<VersionId> = peers.cached[i]
                .iter()
                .filter(|(_, (_, exp))| *exp > t)
                .map(|(_, (v, _))| *v)
                .collect();
            for v in versions {
                self.scenario
                    .plane
                    .register_content(region, record.clone(), v);
            }
        }
    }

    fn peer_offline(
        &mut self,
        p: u32,
        t: SimTime,
        peers: &mut PeerTable,
        net: &mut FlowNet,
        dls: &mut [Dl],
        active: &[usize],
    ) {
        // A peer with an active download stays connected until it ends
        // (the user is waiting for it).
        if peers.active_download[p as usize].is_some() || !peers.online[p as usize] {
            return;
        }
        let spec = &self.scenario.population.peers[p as usize];
        // Drop upload flows sourced here.
        if peers.active_uploads[p as usize] > 0 {
            for id in active {
                let dl = &mut dls[*id];
                let mut k = 0;
                let mut changed = false;
                net.set_trace_scope(dl.ctx, t.as_micros());
                while k < dl.sources.len() {
                    if dl.sources[k].peer == p {
                        let s = dl.sources.swap_remove(k);
                        net.remove_flow(s.flow);
                        self.trace.add_attr(s.span, "bytes", s.bytes as u64);
                        self.trace.add_attr(s.span, "end_reason", "source_offline");
                        self.trace.end_span(s.span, t.as_micros());
                        dl.finished_sources.push((s.peer, s.bytes));
                        peers.active_uploads[p as usize] =
                            peers.active_uploads[p as usize].saturating_sub(1);
                        changed = true;
                    } else {
                        k += 1;
                    }
                }
                net.clear_trace_scope();
                if changed {
                    let downlink = self.scenario.population.peers[dl.peer as usize].down;
                    update_edge_ceil(dl, downlink, net);
                }
            }
        }
        let region = peers.logged_region[p as usize];
        self.scenario.plane.logout(region, spec.guid);
        peers.online[p as usize] = false;
        peers.control_connected[p as usize] = false;
    }

    /// Paced readmission after a CN crash (§3.8): the peer opens a fresh
    /// control connection and — fate-sharing — re-registers its cached
    /// content, repopulating the directories. Skipped if the peer logged
    /// out while waiting (its next login reconnects anyway) or already
    /// holds a fresh session.
    fn control_readmit(&mut self, p: u32, t: SimTime, peers: &mut PeerTable) {
        let i = p as usize;
        if !peers.online[i] || peers.control_connected[i] {
            return;
        }
        peers.control_connected[i] = true;
        let spec = &self.scenario.population.peers[i];
        let site = &peers.mobility[i].sites[peers.site[i]];
        let region = peers.logged_region[i];
        let addr = PeerAddr {
            ip: site.ip,
            port: 8443,
        };
        self.scenario.plane.login(
            region,
            spec.guid,
            addr,
            spec.nat,
            peers.uploads_enabled[i],
            40_100,
            vec![],
            t,
        );
        self.metrics.counter("hybrid.fault.readmissions").incr();
        if peers.uploads_enabled[i] {
            let record = PeerRecord {
                guid: spec.guid,
                addr,
                asn: site.asn,
                area: site.country as u16,
                zone: region as u8,
                nat: spec.nat,
            };
            let versions: Vec<VersionId> = peers.cached[i]
                .values()
                .filter(|(_, exp)| *exp > t)
                .map(|(v, _)| *v)
                .collect();
            self.metrics
                .counter("hybrid.fault.reregistered_versions")
                .add(versions.len() as u64);
            for v in versions {
                self.scenario
                    .plane
                    .register_content(region, record.clone(), v);
            }
        }
    }

    /// Paced RE-ADD response after a DN soft-state wipe (§3.8): the peer's
    /// control connection survived, so it answers the directory's RE-ADD
    /// request with its cached versions.
    fn control_readd(&mut self, p: u32, t: SimTime, peers: &PeerTable) {
        let i = p as usize;
        if !peers.online[i] || !peers.control_connected[i] || !peers.uploads_enabled[i] {
            return;
        }
        let versions: Vec<VersionId> = peers.cached[i]
            .values()
            .filter(|(_, exp)| *exp > t)
            .map(|(v, _)| *v)
            .collect();
        if versions.is_empty() {
            return;
        }
        let spec = &self.scenario.population.peers[i];
        let site = &peers.mobility[i].sites[peers.site[i]];
        let record = PeerRecord {
            guid: spec.guid,
            addr: PeerAddr {
                ip: site.ip,
                port: 8443,
            },
            asn: site.asn,
            area: site.country as u16,
            zone: peers.logged_region[i] as u8,
            nat: spec.nat,
        };
        self.scenario
            .plane
            .handle_readd(peers.logged_region[i], record, &versions);
        self.metrics.counter("hybrid.fault.readds").incr();
        self.metrics
            .counter("hybrid.fault.readd_versions")
            .add(versions.len() as u64);
    }

    #[allow(clippy::too_many_arguments)]
    fn start_download(
        &mut self,
        req_idx: usize,
        t: SimTime,
        peers: &mut PeerTable,
        guid_owner: &mut FxHashMap<Guid, u32>,
        net: &mut FlowNet,
        edge_nodes: &[NodeId],
        edge_down: &[bool],
        dls: &mut Vec<Dl>,
        active: &mut Vec<usize>,
        dataset: &mut TraceDataset,
        stats: &mut RunStats,
        hot: &HotInstruments,
        rng: &mut DetRng,
    ) {
        let req = self.scenario.workload.requests[req_idx];
        let p = req.peer.0;
        // One concurrent download per peer: drop overlapping requests.
        if peers.active_download[p as usize].is_some() {
            return;
        }
        if !peers.online[p as usize] {
            // The user turned the machine on to download.
            self.login(p, t, peers, guid_owner, dataset, stats, rng);
        }
        let spec = &self.scenario.population.peers[p as usize];
        let region = peers.logged_region[p as usize];
        let control_up = peers.control_connected[p as usize];

        // Root span for this download's causal story. Unsampled requests
        // get the null context; everything recorded through it no-ops.
        let ctx = self.trace.start_trace("download", "hybrid", t.as_micros());
        if ctx.sampled {
            // GUIDs exceed 2^53, so they export as hex strings — raw u64
            // attrs would lose precision through an f64 JSON parser.
            self.trace
                .add_attr(ctx.span, "guid", format!("{:016x}", spec.guid.0 as u64));
        }
        self.trace.add_attr(ctx.span, "object", req.object.0);
        self.trace.add_attr(ctx.span, "region", region as u64);

        // Edge authorization (§3.5) — the trust root even for p2p.
        let auth = match self.scenario.edges[region as usize].authorize_traced(
            spec.guid,
            req.object,
            t,
            &self.trace,
            ctx,
        ) {
            Ok(a) => a,
            Err(_) => {
                self.trace.add_attr(ctx.span, "outcome", "denied");
                self.trace.end_span(ctx.span, t.as_micros());
                return;
            }
        };
        self.scenario
            .ledger
            .record_authorization(spec.guid, auth.token.version);
        let size = auth.manifest.size.bytes() as f64;
        let p2p = auth.policy.p2p_enabled;
        let cap = auth.policy.per_peer_upload_cap;
        let version = auth.token.version;
        self.trace.add_attr(ctx.span, "size", size as u64);
        self.trace.add_attr(ctx.span, "p2p", p2p);

        let id = dls.len();
        let mut dl = Dl {
            peer: p,
            object: req.object,
            version,
            size: size.max(1.0),
            p2p,
            cap,
            started: t,
            token: auth.token,
            edge_flow: None,
            edge_bytes: 0.0,
            sources: Vec::new(),
            finished_sources: Vec::new(),
            initial_peers: 0,
            abort_at: self.user_model.sample_abandon_after(rng).map(|d| t + d),
            env_fail_at_bytes: self
                .user_model
                .sample_env_failure(rng)
                .map(|f| f * size.max(1.0)),
            sys_fail_at_bytes: {
                let prob = if p2p { 0.002 } else { 0.001 };
                rng.chance(prob).then(|| rng.f64() * size.max(1.0))
            },
            requeries: 0,
            region,
            finished: None,
            ctx,
            edge_span: SpanId::NONE,
        };

        // Flow mutations below belong to this download's trace.
        net.set_trace_scope(ctx, t.as_micros());

        // Peer selection and connection establishment.
        if p2p {
            if control_up {
                let site = &peers.mobility[p as usize].sites[peers.site[p as usize]];
                let querier = Querier {
                    guid: spec.guid,
                    asn: site.asn,
                    area: site.country as u16,
                    zone: region as u8,
                    nat: spec.nat,
                };
                let (selected, _qspan) = self.scenario.plane.query_peers_traced(
                    region,
                    &querier,
                    &dl.token,
                    t,
                    rng,
                    &self.trace,
                    ctx,
                );
                if let Ok(contacts) = selected {
                    dl.initial_peers = contacts.len() as u32;
                    connect_sources(
                        &contacts,
                        spec.nat,
                        p,
                        &self.scenario,
                        peers,
                        guid_owner,
                        net,
                        &mut dl,
                        stats,
                        hot,
                        &self.trace,
                        t,
                        rng,
                    );
                }
            } else {
                // §3.8: the control plane is unreachable (CN crashed, the
                // paced readmission hasn't fired yet) — no peer query is
                // possible; the download proceeds against the edge alone.
                self.metrics
                    .counter("hybrid.fault.edge_only_downloads")
                    .incr();
                self.trace
                    .instant(ctx, "control_disconnected", "fault", t.as_micros());
            }
            // Swarm came up empty (nobody reachable through NAT, nobody
            // caching the version, or no control plane to ask): the
            // always-on edge connection is the backstop (§3.3).
            if dl.sources.is_empty() {
                self.metrics.counter("peer.edge_fallbacks").incr();
                self.trace
                    .instant(ctx, "edge_fallback", "edge", t.as_micros());
            }
        }

        if self.scenario.config.edge_backstop && !edge_down[region as usize] {
            dl.edge_flow =
                Some(net.add_flow(edge_nodes[region as usize], peers.node[p as usize], None));
            dl.edge_span = self.trace.span(ctx, "edge_backstop", "edge", t.as_micros());
            update_edge_ceil(&dl, spec.down, net);
        }
        net.clear_trace_scope();

        peers.active_download[p as usize] = Some(id);
        dls.push(dl);
        active.push(id);
    }

    #[allow(clippy::too_many_arguments)]
    fn requery(
        &mut self,
        t: SimTime,
        peers: &mut PeerTable,
        guid_owner: &FxHashMap<Guid, u32>,
        net: &mut FlowNet,
        dls: &mut [Dl],
        active: &[usize],
        stats: &mut RunStats,
        hot: &HotInstruments,
        rng: &mut DetRng,
    ) {
        let sufficient = self.scenario.config.transfer.sufficient_peer_connections;
        let max_rounds = self.scenario.config.transfer.max_requery_rounds;
        for id in active {
            // Collect what we need up front to appease the borrow checker.
            let (needs, peer_idx, region) = {
                let dl = &dls[*id];
                (
                    // div_ceil: with `sufficient <= 1`, flooring division
                    // made the threshold 0 and disabled re-queries outright.
                    dl.p2p
                        && dl.finished.is_none()
                        && dl.sources.len() < sufficient.div_ceil(2)
                        && dl.requeries < max_rounds,
                    dl.peer,
                    dl.region,
                )
            };
            // A control-disconnected peer (CN crash, readmission pending)
            // cannot re-query; it keeps whatever sources it has plus the
            // edge backstop until its Readmit fires.
            if !needs || !peers.control_connected[peer_idx as usize] {
                continue;
            }
            let spec = &self.scenario.population.peers[peer_idx as usize];
            let site_idx = peers.site[peer_idx as usize];
            let site = &peers.mobility[peer_idx as usize].sites[site_idx];
            let querier = Querier {
                guid: spec.guid,
                asn: site.asn,
                area: site.country as u16,
                zone: region as u8,
                nat: spec.nat,
            };
            let token = dls[*id].token;
            let ctx = dls[*id].ctx;
            let (selected, qspan) = self.scenario.plane.query_peers_traced(
                region,
                &querier,
                &token,
                t,
                rng,
                &self.trace,
                ctx,
            );
            if let Ok(contacts) = selected {
                dls[*id].requeries += 1;
                stats.requeries += 1;
                self.trace
                    .add_attr(qspan, "round", dls[*id].requeries as u64);
                let nat = spec.nat;
                let downlink = self.scenario.population.peers[peer_idx as usize].down;
                net.set_trace_scope(ctx, t.as_micros());
                connect_sources(
                    &contacts,
                    nat,
                    peer_idx,
                    &self.scenario,
                    peers,
                    guid_owner,
                    net,
                    &mut dls[*id],
                    stats,
                    hot,
                    &self.trace,
                    t,
                    rng,
                );
                update_edge_ceil(&dls[*id], downlink, net);
                net.clear_trace_scope();
            }
        }
    }
}

/// Pre-resolved instrument handles for the per-contact and per-download
/// hot paths. A name lookup takes a registry lock plus a map probe; these
/// fire up to ~100k times per run, so the handles are resolved once.
struct HotInstruments {
    nat_attempts: Counter,
    nat_blocked: Counter,
    nat_punch_failures: Counter,
    nat_ok: Counter,
    downloads_completed: Counter,
    downloads_abandoned: Counter,
    downloads_failed_system: Counter,
    downloads_failed_env: Counter,
    download_secs: Histogram,
}

impl HotInstruments {
    fn from(metrics: &MetricsRegistry) -> Self {
        HotInstruments {
            nat_attempts: metrics.counter("peer.nat_traversal_attempts"),
            nat_blocked: metrics.counter("peer.nat_traversal_blocked"),
            nat_punch_failures: metrics.counter("peer.nat_punch_failures"),
            nat_ok: metrics.counter("peer.nat_traversal_ok"),
            downloads_completed: metrics.counter("hybrid.downloads_completed"),
            downloads_abandoned: metrics.counter("hybrid.downloads_abandoned"),
            downloads_failed_system: metrics.counter("hybrid.downloads_failed_system"),
            downloads_failed_env: metrics.counter("hybrid.downloads_failed_env"),
            download_secs: metrics.histogram("hybrid.download_secs"),
        }
    }
}

/// The edge download runs over a single HTTP(S) connection; against `k`
/// concurrent peer connections it behaves like one TCP flow among `k+1`
/// sharing the downlink, not like an unbounded backstop that soaks up all
/// slack. This sets the edge flow's rate ceiling accordingly (no ceiling
/// when there are no peer sources).
fn update_edge_ceil(dl: &Dl, downlink: Bandwidth, net: &mut FlowNet) {
    if let Some(f) = dl.edge_flow {
        let k = dl.sources.len();
        let ceil = if k == 0 {
            None
        } else {
            Some(Bandwidth::from_bytes_per_sec(
                downlink.bytes_per_sec() / (k as f64 + 1.0),
            ))
        };
        net.set_flow_ceil(f, ceil);
    }
}

/// Try to connect the selected contacts as swarm sources. Each offered
/// contact gets a `connect_attempt` marker span recording why it did or
/// did not become a source — the per-download story behind the aggregate
/// NAT counters.
#[allow(clippy::too_many_arguments)]
fn connect_sources(
    contacts: &[netsession_core::msg::PeerContact],
    my_nat: netsession_core::msg::NatType,
    downloader: u32,
    scenario: &Scenario,
    peers: &mut PeerTable,
    guid_owner: &FxHashMap<Guid, u32>,
    net: &mut FlowNet,
    dl: &mut Dl,
    stats: &mut RunStats,
    hot: &HotInstruments,
    trace: &TraceSink,
    t: SimTime,
    rng: &mut DetRng,
) {
    let max_conns = scenario.config.transfer.max_download_connections;
    let max_uploads = scenario.config.transfer.max_upload_connections;
    for c in contacts {
        if dl.sources.len() >= max_conns {
            break;
        }
        let attempt = trace.instant(dl.ctx, "connect_attempt", "peer", t.as_micros());
        if attempt.is_some() {
            // The contact is who we dial — the *destination* of the
            // attempt. (`src_guid` on `peer_transfer` below is correct:
            // once connected, that peer is the byte source.)
            trace.add_attr(attempt, "dst_guid", format!("{:016x}", c.guid.0 as u64));
        }
        let Some(&src) = guid_owner.get(&c.guid) else {
            trace.add_attr(attempt, "result", "stale_contact");
            continue;
        };
        if src == downloader {
            trace.add_attr(attempt, "result", "self");
            continue;
        }
        if dl.sources.iter().any(|s| s.peer == src) {
            trace.add_attr(attempt, "result", "duplicate");
            continue;
        }
        if !peers.online[src as usize]
            || !peers.uploads_enabled[src as usize]
            || peers.active_uploads[src as usize] as usize >= max_uploads
        {
            trace.add_attr(attempt, "result", "unavailable");
            continue;
        }
        // Source must still cache the exact version.
        match peers.cached[src as usize].get(&dl.object) {
            Some((v, _)) if *v == dl.version => {}
            _ => {
                trace.add_attr(attempt, "result", "stale_version");
                continue;
            }
        }
        // Traversal.
        hot.nat_attempts.incr();
        let conn = connectivity(my_nat, c.nat);
        trace.add_attr(attempt, "nat", conn.label());
        let p_ok = match conn {
            Connectivity::Direct => P_DIRECT,
            Connectivity::HolePunch => P_PUNCH,
            Connectivity::None => {
                stats.punch_failures += 1;
                hot.nat_blocked.incr();
                trace.add_attr(attempt, "result", "blocked");
                continue;
            }
        };
        if !rng.chance(p_ok) {
            stats.punch_failures += 1;
            hot.nat_punch_failures.incr();
            trace.add_attr(attempt, "result", "punch_failed");
            continue;
        }
        hot.nat_ok.incr();
        trace.add_attr(attempt, "result", "connected");
        let flow = net.add_flow(
            peers.node[src as usize],
            peers.node[downloader as usize],
            None,
        );
        peers.active_uploads[src as usize] += 1;
        let span = trace.span(dl.ctx, "peer_transfer", "peer", t.as_micros());
        if span.is_some() {
            trace.add_attr(span, "src_guid", format!("{:016x}", c.guid.0 as u64));
        }
        dl.sources.push(SourceFlow {
            peer: src,
            flow,
            bytes: 0.0,
            span,
        });
    }
}

/// Advance all active downloads from `from` to `to` at current rates,
/// detecting completion / env-failure / abort crossings with exact
/// interpolated times.
fn advance(
    dls: &mut [Dl],
    active: &[usize],
    net: &FlowNet,
    from: SimTime,
    to: SimTime,
    rate_scratch: &mut Vec<f64>,
) {
    if to <= from {
        return;
    }
    let dt = (to - from).as_secs_f64();
    for id in active {
        let dl = &mut dls[*id];
        if dl.finished.is_some() {
            continue;
        }
        let edge_rate = dl
            .edge_flow
            .map(|f| net.rate(f).bytes_per_sec())
            .unwrap_or(0.0);
        // One pass over the sources collects rates (into a scratch buffer
        // shared across the whole run — no per-download allocation) and the
        // per-source byte sum; the accrual below reuses the cached rates
        // instead of a second round of slab lookups. Each f64 sum keeps its
        // original grouping (rate sum, source-bytes sum, finished-bytes sum
        // computed separately, then added), so results are bit-identical to
        // the naive three-pass version.
        rate_scratch.clear();
        let mut src_rate_sum = 0.0;
        let mut src_bytes = 0.0;
        for s in &dl.sources {
            let r = net.rate(s.flow).bytes_per_sec();
            rate_scratch.push(r);
            src_rate_sum += r;
            src_bytes += s.bytes;
        }
        let total_rate = edge_rate + src_rate_sum;
        let done =
            dl.edge_bytes + src_bytes + dl.finished_sources.iter().map(|(_, b)| b).sum::<f64>();

        // Find the earliest milestone within (from, to].
        let mut milestone_dt = dt;
        let mut outcome: Option<DownloadOutcome> = None;
        if total_rate > 0.0 {
            let dt_complete = (dl.size - done) / total_rate;
            if dt_complete <= milestone_dt {
                milestone_dt = dt_complete.max(0.0);
                outcome = Some(DownloadOutcome::Completed);
            }
            // A failure threshold already crossed in a previous step gives
            // a negative raw dt; clamp to 0 so the failure fires at the
            // step boundary instead of being skipped forever.
            if let Some(fail_bytes) = dl.env_fail_at_bytes {
                let dt_fail = ((fail_bytes - done) / total_rate).max(0.0);
                if dt_fail < milestone_dt {
                    milestone_dt = dt_fail;
                    outcome = Some(DownloadOutcome::Failed {
                        system_related: false,
                    });
                }
            }
            if let Some(fail_bytes) = dl.sys_fail_at_bytes {
                let dt_fail = ((fail_bytes - done) / total_rate).max(0.0);
                if dt_fail < milestone_dt {
                    milestone_dt = dt_fail;
                    outcome = Some(DownloadOutcome::Failed {
                        system_related: true,
                    });
                }
            }
        }
        if let Some(abort_at) = dl.abort_at {
            if abort_at <= to {
                let dt_abort = abort_at.since(from).as_secs_f64();
                if (dt_abort < milestone_dt || outcome.is_none()) && dt_abort <= milestone_dt {
                    milestone_dt = dt_abort;
                    outcome = Some(DownloadOutcome::Abandoned);
                }
            }
        }

        // Accumulate bytes up to the milestone (or the full step).
        let step = milestone_dt.clamp(0.0, dt);
        dl.edge_bytes += edge_rate * step;
        for (s, r) in dl.sources.iter_mut().zip(rate_scratch.iter()) {
            s.bytes += r * step;
        }
        if let Some(outcome) = outcome {
            let at = from + SimDuration::from_secs_f64(step);
            dl.finished = Some((at, outcome));
        }
    }
}

/// Emit records and release resources for downloads that reached a
/// terminal state during the last advance.
#[allow(clippy::too_many_arguments)]
fn process_finished(
    dls: &mut [Dl],
    active: &mut Vec<usize>,
    peers: &mut PeerTable,
    net: &mut FlowNet,
    scenario: &mut Scenario,
    dataset: &mut TraceDataset,
    stats: &mut RunStats,
    hot: &HotInstruments,
    trace: &TraceSink,
    _now: SimTime,
) {
    let mut i = 0;
    while i < active.len() {
        let id = active[i];
        let Some((ended, outcome)) = dls[id].finished else {
            i += 1;
            continue;
        };
        active.swap_remove(i);
        let dl = &mut dls[id];
        let spec = &scenario.population.peers[dl.peer as usize];

        // Tear down flows.
        net.set_trace_scope(dl.ctx, ended.as_micros());
        if let Some(f) = dl.edge_flow.take() {
            net.remove_flow(f);
        }
        if dl.edge_span != SpanId::NONE {
            trace.add_attr(dl.edge_span, "bytes", dl.edge_bytes as u64);
            trace.end_span(dl.edge_span, ended.as_micros());
        }
        let sources: Vec<(u32, f64)> = dl
            .sources
            .drain(..)
            .map(|s| {
                net.remove_flow(s.flow);
                peers.active_uploads[s.peer as usize] =
                    peers.active_uploads[s.peer as usize].saturating_sub(1);
                trace.add_attr(s.span, "bytes", s.bytes as u64);
                trace.end_span(s.span, ended.as_micros());
                (s.peer, s.bytes)
            })
            .chain(dl.finished_sources.drain(..))
            .collect();
        net.clear_trace_scope();

        // Transfer records + upload accounting. Every delivered byte counts
        // toward `bytes_peers` — `done_bytes()` counted sub-1-byte source
        // contributions toward completion, so dropping them here would make
        // a completed download's logged total undershoot its size. Only the
        // per-source TransferRecord emission skips the <1-byte dust.
        let mut bytes_peers = 0.0;
        for (src, bytes) in &sources {
            bytes_peers += bytes;
            if *bytes < 1.0 {
                continue;
            }
            let src_spec = &scenario.population.peers[*src as usize];
            dataset.transfers.push(TransferRecord {
                from_guid: src_spec.guid,
                to_guid: spec.guid,
                from_as: src_spec.asn,
                to_as: spec.asn,
                from_country: src_spec.country as u16,
                to_country: spec.country as u16,
                bytes: ByteCount(*bytes as u64),
                object: dl.object,
            });
            let src_region = peers.logged_region[*src as usize];
            scenario
                .plane
                .count_upload(src_region, src_spec.guid, dl.object, dl.cap);
        }
        stats.p2p_bytes += bytes_peers as u64;
        stats.edge_bytes += dl.edge_bytes as u64;

        // Edge receipt.
        if dl.edge_bytes >= 1.0 {
            scenario.edges[dl.region as usize].record_served_traced(
                spec.guid,
                dl.version,
                ByteCount(dl.edge_bytes as u64),
                trace,
                dl.ctx,
                ended.as_micros(),
            );
        }

        // Close the root span. The byte attrs use the same `as u64`
        // truncation as the DownloadRecord below, so `trace-explain`'s
        // byte split cross-checks the metrics log exactly.
        let outcome_label = match outcome {
            DownloadOutcome::Completed => "completed",
            DownloadOutcome::Abandoned => "abandoned",
            DownloadOutcome::Failed { system_related } => {
                if system_related {
                    "failed_system"
                } else {
                    "failed_env"
                }
            }
        };
        trace.add_attr(dl.ctx.span, "outcome", outcome_label);
        trace.add_attr(dl.ctx.span, "bytes_edge", dl.edge_bytes as u64);
        trace.add_attr(dl.ctx.span, "bytes_peers", bytes_peers as u64);
        trace.add_attr(dl.ctx.span, "initial_peers", dl.initial_peers as u64);
        trace.add_attr(dl.ctx.span, "requeries", dl.requeries as u64);
        trace.end_span(dl.ctx.span, ended.as_micros());

        // Outcome bookkeeping.
        match outcome {
            DownloadOutcome::Completed => {
                stats.completed += 1;
                hot.downloads_completed.incr();
            }
            DownloadOutcome::Abandoned => {
                stats.abandoned += 1;
                hot.downloads_abandoned.incr();
            }
            DownloadOutcome::Failed { system_related } => {
                if system_related {
                    stats.failed_system += 1;
                    hot.downloads_failed_system.incr();
                } else {
                    stats.failed_env += 1;
                    hot.downloads_failed_env.incr();
                }
            }
        }
        hot.download_secs
            .record((ended - dl.started).as_secs_f64() as u64);

        // Cache + registration on completion.
        if outcome == DownloadOutcome::Completed {
            let ttl = SimDuration::from_hours(scenario.config.transfer.cache_ttl_hours as u64);
            let i = dl.peer as usize;
            peers.cached[i].insert(dl.object, (dl.version, ended + ttl));
            // A control-disconnected peer cannot reach the DN to register;
            // its paced readmission re-registers the whole cache (this
            // object included) when it fires.
            if peers.uploads_enabled[i] && dl.p2p && peers.control_connected[i] {
                let site = &peers.mobility[i].sites[peers.site[i]];
                let record = PeerRecord {
                    guid: spec.guid,
                    addr: PeerAddr {
                        ip: site.ip,
                        port: 8443,
                    },
                    asn: site.asn,
                    area: site.country as u16,
                    zone: peers.logged_region[i] as u8,
                    nat: spec.nat,
                };
                scenario
                    .plane
                    .register_content(peers.logged_region[i], record, dl.version);
            }
        }

        // Download record + usage report + monitoring sample.
        let record = DownloadRecord {
            guid: spec.guid,
            object: dl.object,
            cp: scenario.catalog.get(dl.object).cp,
            size: ByteCount(dl.size as u64),
            p2p_enabled: dl.p2p,
            started: dl.started,
            ended,
            bytes_infra: ByteCount(dl.edge_bytes as u64),
            bytes_peers: ByteCount(bytes_peers as u64),
            outcome,
            initial_peers: dl.initial_peers,
            asn: spec.asn,
            country: spec.country as u16,
            region: spec.region().index() as u8,
        };
        scenario
            .plane
            .monitor
            .report_speed(ended, record.mean_speed());
        scenario
            .plane
            .accept_usage(dl.region, vec![record_to_usage(&record)]);
        dataset.downloads.push(record);

        peers.active_download[dl.peer as usize] = None;
    }
}

fn record_to_usage(r: &DownloadRecord) -> netsession_core::msg::UsageRecord {
    netsession_core::msg::UsageRecord {
        guid: r.guid,
        version: VersionId {
            object: r.object,
            version: 1,
        },
        started: r.started,
        ended: r.ended,
        bytes_from_infrastructure: r.bytes_infra,
        bytes_from_peers: r.bytes_peers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsession_logs::records::DownloadOutcome;

    fn run_tiny() -> SimOutput {
        HybridSim::run_config(ScenarioConfig::tiny())
    }

    #[test]
    fn month_produces_a_full_dataset() {
        let out = run_tiny();
        let cfg = ScenarioConfig::tiny();
        assert!(
            out.dataset.downloads.len() as f64 > cfg.workload.downloads as f64 * 0.8,
            "most requests become download records ({} of {})",
            out.dataset.downloads.len(),
            cfg.workload.downloads
        );
        assert!(out.stats.logins > 1000, "logins {}", out.stats.logins);
        assert!(!out.dataset.transfers.is_empty(), "p2p transfers happened");
        assert!(!out.dataset.registrations.is_empty(), "DN log populated");
        assert!(out.dataset.geodb.distinct_ips() > 500);
    }

    #[test]
    fn most_downloads_complete_and_outcomes_are_shaped_like_the_paper() {
        let out = run_tiny();
        let total = out.dataset.downloads.len() as f64;
        let completed = out.stats.completed as f64;
        assert!(
            completed / total > 0.85,
            "completion rate {} too low",
            completed / total
        );
        // Abandonment dominates failures (§5.2).
        assert!(out.stats.abandoned > out.stats.failed_system + out.stats.failed_env);
    }

    #[test]
    fn p2p_enabled_downloads_source_bytes_from_peers() {
        let out = run_tiny();
        let p2p_bytes: u64 = out
            .dataset
            .downloads
            .iter()
            .filter(|d| d.p2p_enabled)
            .map(|d| d.bytes_peers.bytes())
            .sum();
        assert!(p2p_bytes > 0, "peer-assist must actually deliver bytes");
        // Infra-only downloads never have peer bytes.
        for d in out.dataset.downloads.iter().filter(|d| !d.p2p_enabled) {
            assert_eq!(d.bytes_peers, ByteCount::ZERO);
        }
    }

    #[test]
    fn completed_downloads_received_their_size() {
        let out = run_tiny();
        for d in out
            .dataset
            .downloads
            .iter()
            .filter(|d| d.outcome == DownloadOutcome::Completed)
            .take(500)
        {
            let got = d.total_bytes().bytes() as f64;
            let want = d.size.bytes() as f64;
            assert!(
                (got - want).abs() / want.max(1.0) < 0.01,
                "completed download got {got} of {want}"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_tiny();
        let b = run_tiny();
        assert_eq!(a.dataset.downloads.len(), b.dataset.downloads.len());
        assert_eq!(a.stats.completed, b.stats.completed);
        assert_eq!(a.stats.p2p_bytes, b.stats.p2p_bytes);
        for (x, y) in a
            .dataset
            .downloads
            .iter()
            .zip(&b.dataset.downloads)
            .take(200)
        {
            assert_eq!(x.guid, y.guid);
            assert_eq!(x.ended, y.ended);
            assert_eq!(x.bytes_peers, y.bytes_peers);
        }
    }

    #[test]
    fn crossed_failure_threshold_fires_at_step_boundary() {
        // Regression: a failure whose byte threshold was already crossed in
        // a previous advance step used to compute a negative dt and never
        // fire, letting the download survive forever.
        let mut net = FlowNet::new();
        let src = net.add_node(Bandwidth::from_mbps(8.0), Bandwidth::from_mbps(8.0));
        let dst = net.add_node(Bandwidth::from_mbps(8.0), Bandwidth::from_mbps(8.0));
        let flow = net.add_flow(src, dst, None);
        net.recompute();
        assert!(net.rate(flow).bytes_per_sec() > 0.0);
        let version = VersionId {
            object: ObjectId::from_raw(1),
            version: 1,
        };
        let mut dls = vec![Dl {
            peer: 0,
            object: ObjectId::from_raw(1),
            version,
            size: 1e9,
            p2p: false,
            cap: None,
            started: SimTime::ZERO,
            token: AuthToken {
                guid: Guid::from_raw(1),
                version,
                expires: SimTime(u64::MAX),
                mac: netsession_core::hash::Digest::zero(),
            },
            edge_flow: Some(flow),
            edge_bytes: 500_000.0, // already past the threshold below
            sources: Vec::new(),
            finished_sources: Vec::new(),
            initial_peers: 0,
            abort_at: None,
            env_fail_at_bytes: Some(400_000.0),
            sys_fail_at_bytes: None,
            requeries: 0,
            region: 0,
            finished: None,
            ctx: TraceCtx::NONE,
            edge_span: SpanId::NONE,
        }];
        let active = vec![0usize];
        let from = SimTime::ZERO + SimDuration::from_secs(40);
        let to = from + SimDuration::from_secs(20);
        advance(&mut dls, &active, &net, from, to, &mut Vec::new());
        let (at, outcome) = dls[0].finished.expect("crossed threshold must fire");
        assert_eq!(
            outcome,
            DownloadOutcome::Failed {
                system_related: false
            }
        );
        assert_eq!(at, from, "fires at the step boundary, accruing no bytes");
        assert!((dls[0].done_bytes() - 500_000.0).abs() < 1e-6);
    }

    #[test]
    fn pure_p2p_ablation_hurts_completion() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.edge_backstop = false;
        let no_backstop = HybridSim::run_config(cfg);
        let with_backstop = run_tiny();
        let rate =
            |o: &SimOutput| o.stats.completed as f64 / (o.dataset.downloads.len().max(1)) as f64;
        assert!(
            rate(&no_backstop) < rate(&with_backstop),
            "backstop must improve completion ({} vs {})",
            rate(&no_backstop),
            rate(&with_backstop)
        );
    }
}
