//! Live secondary-GUID identity state.
//!
//! The world crate's [`netsession_world::cloning`] generates whole report
//! sequences offline; the simulation instead evolves each installation's
//! chain *login by login*, so the reports land in the login log at the
//! right simulated times. Rollbacks, backup restores, and café re-imaging
//! are applied at scheduled login ordinals.

use netsession_core::id::SecondaryGuid;
use netsession_core::rng::DetRng;
use netsession_world::cloning::{AnomalyKind, InstallationState};

/// Per-installation identity driver.
#[derive(Clone, Debug)]
pub struct IdentityState {
    chain: InstallationState,
    kind: AnomalyKind,
    snapshot: Option<InstallationState>,
    /// Login ordinal at which the anomaly strikes (rollback or restore).
    /// u64: ordinals are compared against doubled trigger points
    /// (`trigger_login * 2` below), and at million-peer × multi-month
    /// scale a u32 login tally is within an order of magnitude of
    /// wrapping — counters on scaled paths are 64-bit by policy.
    trigger_login: u64,
    logins: u64,
}

impl IdentityState {
    /// A fresh normal installation.
    pub fn normal() -> Self {
        IdentityState {
            chain: InstallationState::new(),
            kind: AnomalyKind::None,
            snapshot: None,
            trigger_login: 0,
            logins: 0,
        }
    }

    /// An installation with a scheduled anomaly. `trigger_login` is the
    /// login ordinal (≥1) at which the rollback/restore happens.
    pub fn with_anomaly(kind: AnomalyKind, trigger_login: u64) -> Self {
        IdentityState {
            chain: InstallationState::new(),
            kind,
            snapshot: None,
            trigger_login: trigger_login.max(1),
            logins: 0,
        }
    }

    /// A clone-group member: starts from the master image's chain state.
    pub fn cloned_from(master: &InstallationState) -> Self {
        IdentityState {
            chain: master.snapshot(),
            kind: AnomalyKind::None,
            snapshot: None,
            trigger_login: 0,
            logins: 0,
        }
    }

    /// Build a master image: an installation started `starts` times (the
    /// IT department boots it before imaging).
    pub fn master_image(starts: usize, rng: &mut DetRng) -> InstallationState {
        let mut st = InstallationState::new();
        for _ in 0..starts.max(1) {
            st.start(rng);
        }
        st
    }

    /// The software starts for a login: apply any scheduled anomaly, draw
    /// the new secondary GUID, and return the report (last five, newest
    /// first).
    pub fn on_login(&mut self, rng: &mut DetRng) -> Vec<SecondaryGuid> {
        self.logins += 1;
        debug_assert!(
            self.trigger_login <= u64::MAX / 2,
            "trigger ordinal would overflow its doubled comparison"
        );
        match self.kind {
            AnomalyKind::None => {}
            AnomalyKind::RollbackOnce => {
                if self.logins == self.trigger_login + 1 {
                    // The previous start was the failed update; restore.
                    self.chain.rollback(1);
                }
            }
            AnomalyKind::BackupRestore => {
                if self.logins == self.trigger_login {
                    self.snapshot = Some(self.chain.snapshot());
                } else if self.logins == self.trigger_login * 2 {
                    if let Some(s) = &self.snapshot {
                        self.chain.restore(s);
                    }
                }
            }
            AnomalyKind::ReImage => {
                // Café machine: every login boots from the same image.
                if let Some(s) = &self.snapshot {
                    self.chain.restore(s);
                }
            }
            AnomalyKind::Irregular => {
                if rng.chance(0.3) {
                    self.snapshot = Some(self.chain.snapshot());
                }
                if rng.chance(0.3) {
                    if let Some(s) = &self.snapshot {
                        self.chain.restore(s);
                    }
                }
            }
        }
        let report = self.chain.start(rng);
        // The café image is taken after the machine has run a few times;
        // subsequent logins all boot from it.
        if self.kind == AnomalyKind::ReImage && self.snapshot.is_none() && self.logins >= 3 {
            self.snapshot = Some(self.chain.snapshot());
        }
        report
    }

    /// Number of logins so far.
    pub fn login_count(&self) -> u64 {
        self.logins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports(id: &mut IdentityState, n: usize, rng: &mut DetRng) -> Vec<Vec<SecondaryGuid>> {
        (0..n).map(|_| id.on_login(rng)).collect()
    }

    #[test]
    fn normal_chain_is_linear() {
        let mut rng = DetRng::seeded(1);
        let mut id = IdentityState::normal();
        let reps = reports(&mut id, 6, &mut rng);
        for w in reps.windows(2) {
            assert_eq!(w[1][1], w[0][0], "each report chains to the previous");
        }
    }

    #[test]
    fn rollback_creates_single_fork() {
        let mut rng = DetRng::seeded(2);
        let mut id = IdentityState::with_anomaly(AnomalyKind::RollbackOnce, 3);
        let reps = reports(&mut id, 6, &mut rng);
        // Login 4's parent should equal login 2's head (login 3 rolled
        // back), producing a fork at login 2's head.
        assert_eq!(reps[3][1], reps[1][0]);
        assert_ne!(reps[3][0], reps[2][0]);
    }

    #[test]
    fn reimage_replays_same_parent() {
        let mut rng = DetRng::seeded(3);
        let mut id = IdentityState::with_anomaly(AnomalyKind::ReImage, 1);
        let reps = reports(&mut id, 8, &mut rng);
        // After the image is taken (login 3), every login's parent is the
        // image head: many branches from one vertex.
        let image_head = reps[2][0];
        for rep in &reps[3..] {
            assert_eq!(rep[1], image_head);
        }
    }

    /// Regression for the counter-width audit: ordinals past u32::MAX must
    /// neither wrap (the old `u32` fields overflowed in the doubled
    /// `trigger_login * 2` comparison) nor spuriously fire the anomaly.
    #[test]
    fn huge_trigger_ordinals_do_not_overflow_or_fire() {
        let mut rng = DetRng::seeded(5);
        let trigger = u32::MAX as u64 + 5;
        let mut id = IdentityState::with_anomaly(AnomalyKind::BackupRestore, trigger);
        let reps = reports(&mut id, 8, &mut rng);
        for w in reps.windows(2) {
            assert_eq!(w[1][1], w[0][0], "chain must stay linear pre-trigger");
        }
        assert_eq!(id.login_count(), 8);
    }

    #[test]
    fn clones_share_a_prefix_then_diverge() {
        let mut rng = DetRng::seeded(4);
        let master = IdentityState::master_image(3, &mut rng);
        let mut a = IdentityState::cloned_from(&master);
        let mut b = IdentityState::cloned_from(&master);
        let ra = a.on_login(&mut rng);
        let rb = b.on_login(&mut rng);
        assert_eq!(ra[1], rb[1], "same parent from the image");
        assert_ne!(ra[0], rb[0], "fresh heads diverge");
    }
}
