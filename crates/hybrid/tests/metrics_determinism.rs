//! Two same-seed simulated months must agree byte-for-byte — both on the
//! experiment output (the trace dataset) and on the deterministic metrics
//! snapshot. This is the contract that makes the `results/*.metrics.json`
//! sidecars trustworthy: instrumentation is passive and replayable.

use netsession_hybrid::{HybridSim, Scenario, ScenarioConfig};
use netsession_obs::MetricsRegistry;

#[test]
fn same_seed_runs_produce_identical_metric_snapshots() {
    let run = || {
        let registry = MetricsRegistry::new();
        let out = HybridSim::new(Scenario::build(ScenarioConfig::tiny()))
            .with_metrics(&registry)
            .run();
        (registry.snapshot_json(), out.dataset.downloads.len())
    };
    let (snap_a, downloads_a) = run();
    let (snap_b, downloads_b) = run();
    assert_eq!(downloads_a, downloads_b);
    assert_eq!(snap_a, snap_b, "deterministic snapshot diverged");
    // The snapshot is populated, not vacuously equal.
    assert!(snap_a.contains("hybrid.downloads_completed"));
    assert!(snap_a.contains("sim.events_processed"));
}

#[test]
fn attaching_metrics_does_not_change_the_experiment() {
    let cfg = ScenarioConfig::tiny;
    let plain = HybridSim::run_config(cfg());
    let registry = MetricsRegistry::new();
    let observed = HybridSim::run_config_with(cfg(), &registry);
    assert_eq!(
        plain.dataset.downloads.len(),
        observed.dataset.downloads.len()
    );
    for (a, b) in plain
        .dataset
        .downloads
        .iter()
        .zip(observed.dataset.downloads.iter())
    {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.bytes_peers, b.bytes_peers);
        assert_eq!(a.bytes_infra, b.bytes_infra);
    }
}
