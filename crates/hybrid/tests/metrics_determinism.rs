//! Two same-seed simulated months must agree byte-for-byte — both on the
//! experiment output (the trace dataset) and on the deterministic metrics
//! snapshot. This is the contract that makes the `results/*.metrics.json`
//! sidecars trustworthy: instrumentation is passive and replayable.

use netsession_hybrid::{HybridSim, Scenario, ScenarioConfig};
use netsession_obs::MetricsRegistry;

#[test]
fn same_seed_runs_produce_identical_metric_snapshots() {
    let run = || {
        let registry = MetricsRegistry::new();
        let out = HybridSim::new(Scenario::build(ScenarioConfig::tiny()))
            .with_metrics(&registry)
            .run();
        (registry.snapshot_json(), out.dataset.downloads.len())
    };
    let (snap_a, downloads_a) = run();
    let (snap_b, downloads_b) = run();
    assert_eq!(downloads_a, downloads_b);
    assert_eq!(snap_a, snap_b, "deterministic snapshot diverged");
    // The snapshot is populated, not vacuously equal.
    assert!(snap_a.contains("hybrid.downloads_completed"));
    assert!(snap_a.contains("sim.events_processed"));
}

#[test]
fn same_seed_runs_produce_identical_trace_exports() {
    let run = |sample_every: u64| {
        let mut cfg = ScenarioConfig::tiny();
        cfg.obs.trace_sample_every = sample_every;
        let out = HybridSim::run_config(cfg);
        (
            out.trace.export_chrome_json(),
            out.metrics.snapshot_json(),
            out.dataset.downloads.len(),
        )
    };
    let (trace_a, snap_a, downloads_a) = run(4);
    let (trace_b, snap_b, downloads_b) = run(4);
    assert_eq!(downloads_a, downloads_b);
    assert_eq!(trace_a, trace_b, "same-seed trace exports diverged");
    assert_eq!(snap_a, snap_b, "same-seed snapshots diverged");
    // Populated, not vacuously equal: the export carries real spans.
    assert!(trace_a.contains("\"download\""));
    assert!(trace_a.contains("\"connect_attempt\""));
    assert!(snap_a.contains("trace.spans.hybrid"));
}

#[test]
fn sampling_rate_changes_volume_but_not_ids() {
    // The download counter advances whether or not a download is sampled,
    // so the k-th download's trace id is stable across sampling rates.
    let export = |sample_every: u64| {
        let mut cfg = ScenarioConfig::tiny();
        cfg.obs.trace_sample_every = sample_every;
        HybridSim::run_config(cfg).trace.export_chrome_json()
    };
    let sparse = export(8);
    let dense = export(2);
    let ids = |s: &str| {
        let mut out = std::collections::BTreeSet::new();
        for chunk in s.split("\"trace\":\"").skip(1) {
            out.insert(chunk[..16].to_string());
        }
        out
    };
    let sparse_ids = ids(&sparse);
    let dense_ids = ids(&dense);
    assert!(
        sparse_ids.is_subset(&dense_ids),
        "sparser sampling must select a subset of the denser run's traces"
    );
    assert!(dense_ids.len() > sparse_ids.len());
}

#[test]
fn attaching_metrics_does_not_change_the_experiment() {
    let cfg = ScenarioConfig::tiny;
    let plain = HybridSim::run_config(cfg());
    let registry = MetricsRegistry::new();
    let observed = HybridSim::run_config_with(cfg(), &registry);
    assert_eq!(
        plain.dataset.downloads.len(),
        observed.dataset.downloads.len()
    );
    for (a, b) in plain
        .dataset
        .downloads
        .iter()
        .zip(observed.dataset.downloads.iter())
    {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.bytes_peers, b.bytes_peers);
        assert_eq!(a.bytes_infra, b.bytes_infra);
    }
}
