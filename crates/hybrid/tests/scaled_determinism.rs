//! The sharded scaled runner is an optimization, not an approximation: the
//! merged download/login/transfer record streams (SHA-256 digests), the
//! alert logs, the streamed summary, and every per-region tally from a
//! parallel run must be **byte-identical** to the sequential oracle — the
//! same shard programs stepped one window at a time on one thread. Checked
//! across 50+ seeded small-scale scenarios, roughly half with an active
//! `FaultSchedule` covering every fault kind.

use netsession_core::rng::DetRng;
use netsession_core::time::SimDuration;
use netsession_hybrid::{
    run_scaled, run_scaled_profiled, FaultEvent, FaultKind, FaultSchedule, ScaledConfig, MAX_SHARDS,
};
use netsession_logs::ProfileDigest;
use netsession_obs::profile::ShardProfiler;
use netsession_obs::MetricsRegistry;

/// A randomized fault schedule touching every kind over the run's days.
fn random_faults(rng: &mut DetRng, days: u64) -> FaultSchedule {
    let horizon = days * 24;
    let n = 1 + rng.index(4);
    let events = (0..n)
        .map(|_| {
            let region = rng.below(9) as u32;
            let kind = match rng.index(4) {
                0 => FaultKind::CnCrash { region },
                1 => FaultKind::DnWipe { region },
                2 => FaultKind::EdgeOutage {
                    region,
                    secs: 600 + rng.below(7200),
                },
                _ => FaultKind::ChurnBurst {
                    fraction: 0.1 + rng.f64() * 0.8,
                },
            };
            FaultEvent {
                at_hours: rng.below(horizon),
                kind,
            }
        })
        .collect();
    FaultSchedule { events }
}

fn scenario(seed: u64) -> ScaledConfig {
    let mut rng = DetRng::seeded(0x5ca1_ed00 ^ seed);
    let days = 2 + rng.below(3);
    let faults = if seed.is_multiple_of(2) {
        random_faults(&mut rng, days)
    } else {
        FaultSchedule::default()
    };
    // Shard counts span the whole sub-region regime: singleton, a few
    // whole-region-ish cuts, and counts past the 9 regions (blocks then
    // split regions into sub-ranges).
    const SHARD_CHOICES: [usize; 10] = [1, 2, 3, 4, 5, 6, 9, 12, 16, 32];
    ScaledConfig {
        seed: seed.wrapping_mul(0x9e37_79b9) + 7,
        peers: 1_500 + rng.below(2_500),
        objects: 200 + rng.below(400),
        days,
        shards: SHARD_CHOICES[rng.index(SHARD_CHOICES.len())],
        window: SimDuration::from_secs(300 + rng.below(900)),
        faults,
        ..ScaledConfig::default()
    }
}

/// `ScaledOutput` derives `PartialEq` over *everything* — per-region
/// SHA-256 stream digests, alert strings, tallies, summary, runner stats —
/// so one `assert_eq!` is full byte-identity of the merged outputs.
#[test]
fn parallel_run_is_byte_identical_to_sequential_oracle_across_52_seeds() {
    let mut faulty = 0;
    for seed in 0..52u64 {
        let cfg = scenario(seed);
        if !cfg.faults.events.is_empty() {
            faulty += 1;
        }
        let oracle = run_scaled(&cfg, false, None);
        let threaded = run_scaled(&cfg, true, None);
        assert_eq!(
            oracle,
            threaded,
            "seed {seed} ({} shards, {} faults): parallel diverged",
            cfg.shards,
            cfg.faults.events.len()
        );
        assert_eq!(
            oracle.report(),
            threaded.report(),
            "seed {seed}: report text"
        );
        assert!(oracle.summary.downloads > 0, "seed {seed}: degenerate run");
    }
    assert!(faulty >= 20, "fault coverage too thin: {faulty}/52");
}

/// The shard profiler's **deterministic** channel (per-window events,
/// barrier queue depth, mail matrix) must be byte-identical between the
/// sequential oracle and the threaded run — the SHA-256 stream
/// fingerprint compares the exact canonical bytes, and `ExecProfile`
/// equality compares the aggregates. Exercised at 2, 4, and 16 shards —
/// the last past the region count, so sub-region blocks are covered —
/// under 10+ seeded fault scenarios (every even seed carries a random
/// `FaultSchedule`; see [`scenario`]).
#[test]
fn profiler_deterministic_channel_is_byte_identical_across_modes() {
    let mut faulty = 0;
    for seed in (0..20u64).step_by(2) {
        for shards in [2usize, 4, 16] {
            let mut cfg = scenario(seed);
            cfg.shards = shards;
            assert!(!cfg.faults.events.is_empty(), "even seeds carry faults");
            faulty += 1;
            let profiled = |parallel: bool| {
                let p = ShardProfiler::new().with_sink(Box::new(ProfileDigest::new()));
                let (out, p) = run_scaled_profiled(&cfg, parallel, None, Some(p));
                let p = p.expect("profiler returned");
                let fp = p.stream_fingerprint().expect("digest sink fingerprint");
                (out, p.exec().clone(), fp)
            };
            let (out_seq, exec_seq, fp_seq) = profiled(false);
            let (out_par, exec_par, fp_par) = profiled(true);
            assert_eq!(out_seq, out_par, "seed {seed} x{shards}: output diverged");
            assert_eq!(
                exec_seq, exec_par,
                "seed {seed} x{shards}: deterministic profile diverged"
            );
            assert_eq!(
                fp_seq, fp_par,
                "seed {seed} x{shards}: profile stream bytes diverged"
            );
            // The profile is consistent with the run it watched.
            let stats = exec_seq.stats();
            assert_eq!(stats.events, out_seq.events, "profiler event total");
            assert_eq!(stats.windows, out_seq.windows, "profiler barrier count");
            assert_eq!(stats.shards, shards);
            assert!(stats.crit_events >= stats.events / shards as u64);
            assert!(stats.crit_events <= stats.events);
        }
    }
    assert!(faulty >= 10, "fault scenario coverage too thin: {faulty}");
}

/// `RegistrySnapshot::merge` over the shard-labeled runner counters:
/// folding two runs' registries reads like one registry that saw both
/// (counters add), which is how multi-run dashboards aggregate.
#[test]
fn registry_snapshot_merge_over_shard_labeled_metrics() {
    let cfg = scenario(4);
    let reg_a = MetricsRegistry::new();
    let reg_b = MetricsRegistry::new();
    let a = run_scaled(&cfg, false, Some(&reg_a));
    let b = run_scaled(&cfg, true, Some(&reg_b));
    assert_eq!(a, b);
    let one = reg_a.scrape();
    let mut merged = reg_a.scrape();
    merged.merge(&reg_b.scrape());
    for k in 0..cfg.shards {
        for stat in ["events", "windows", "cross_sent", "cross_recv"] {
            let name = format!("shard.{k}.{stat}");
            assert_eq!(
                merged.counter(&name),
                2 * one.counter(&name),
                "{name} must add under merge"
            );
        }
    }
    assert_eq!(
        merged.counter("shard.windows_total"),
        2 * one.counter("shard.windows_total")
    );
    assert_eq!(one.counter("shard.windows_total"), a.windows);
}

/// Faults must actually bite — otherwise the faulty half of the property
/// test exercises nothing. An edge outage plus control crash in a region
/// must change that region's record streams and leave alerts behind.
#[test]
fn faults_change_outputs_and_leave_alerts() {
    let base = ScaledConfig {
        peers: 4_000,
        objects: 300,
        days: 3,
        shards: 3,
        ..ScaledConfig::default()
    };
    let faulty = ScaledConfig {
        faults: FaultSchedule {
            events: vec![
                FaultEvent {
                    at_hours: 10,
                    kind: FaultKind::CnCrash { region: 6 },
                },
                FaultEvent {
                    at_hours: 30,
                    kind: FaultKind::EdgeOutage {
                        region: 6,
                        secs: 3_600,
                    },
                },
                FaultEvent {
                    at_hours: 40,
                    kind: FaultKind::ChurnBurst { fraction: 0.5 },
                },
            ],
        },
        ..base.clone()
    };
    let clean = run_scaled(&base, true, None);
    let hurt = run_scaled(&faulty, true, None);
    assert_ne!(clean, hurt, "faults must perturb the run");
    let europe = hurt.regions.iter().find(|r| r.region == "Europe").unwrap();
    // Region faults alert exactly once (the region's home sub-shard logs
    // them); a churn burst alerts once per sub-shard part of the region,
    // each line carrying that part's dropped count.
    let count = |needle: &str| europe.alerts.iter().filter(|a| a.class == needle).count();
    assert_eq!(count("cn_crash"), 1, "alerts: {:?}", europe.alerts);
    assert_eq!(count("edge_outage"), 1, "alerts: {:?}", europe.alerts);
    assert!(count("churn_burst") >= 1, "alerts: {:?}", europe.alerts);
    assert_eq!(
        europe.alerts.len(),
        2 + count("churn_burst"),
        "all three faults hit Europe: {:?}",
        europe.alerts
    );
    let clean_eu = clean.regions.iter().find(|r| r.region == "Europe").unwrap();
    assert_ne!(
        europe.digest, clean_eu.digest,
        "faulted region's record streams must differ"
    );
    // A 50% churn burst cuts thousands of sessions out from under their
    // scheduled requests; the handful of natural skips (a next-day login
    // re-shortening an overlapping session) can't match it. Both runs are
    // deterministic, so the comparison is stable.
    let skips = |o: &netsession_hybrid::ScaledOutput| {
        o.regions.iter().map(|r| r.skipped_offline).sum::<u64>()
    };
    assert!(
        skips(&hurt) > skips(&clean),
        "churn burst must cut sessions out from under scheduled requests: {} vs {}",
        skips(&hurt),
        skips(&clean)
    );
}

/// Shard-count edge cases for the sub-region partition: the degenerate
/// singleton, K above the region count, and the supported maximum — each
/// byte-identical parallel-vs-sequential and keeping the nine-region
/// report shape.
#[test]
fn shard_count_edges_stay_byte_identical() {
    let base = ScaledConfig {
        peers: 2_000,
        objects: 250,
        days: 2,
        ..ScaledConfig::default()
    };
    for shards in [1usize, 12, MAX_SHARDS] {
        let cfg = ScaledConfig {
            shards,
            ..base.clone()
        };
        cfg.validate().expect("edge config valid");
        let oracle = run_scaled(&cfg, false, None);
        let threaded = run_scaled(&cfg, true, None);
        assert_eq!(oracle, threaded, "K={shards}: parallel diverged");
        assert_eq!(oracle.regions.len(), 9, "K={shards}");
        assert_eq!(oracle.shard_peers.iter().sum::<u64>(), cfg.peers);
        assert!(oracle.shard_peers.iter().all(|&p| p > 0), "K={shards}");
    }
}

/// K = 16 — past the nine regions, so every shard is a genuine
/// sub-region block — must hold byte-identity across seeded fault
/// scenarios of every kind.
#[test]
fn sixteen_sub_shards_byte_identical_across_fault_scenarios() {
    let mut faulty = 0;
    for seed in 0..10u64 {
        let mut cfg = scenario(seed);
        cfg.shards = 16;
        if !cfg.faults.events.is_empty() {
            faulty += 1;
        }
        let oracle = run_scaled(&cfg, false, None);
        let threaded = run_scaled(&cfg, true, None);
        assert_eq!(
            oracle,
            threaded,
            "seed {seed} (16 sub-shards, {} faults): parallel diverged",
            cfg.faults.events.len()
        );
        assert_eq!(oracle.report(), threaded.report(), "seed {seed}: report");
    }
    assert!(faulty >= 4, "fault coverage too thin: {faulty}/10");
}

/// A population smaller than the shard count cannot form non-empty
/// blocks: `validate` must reject it with an actionable message, before
/// any runner machinery is built.
#[test]
fn population_below_shard_count_is_rejected() {
    let cfg = ScaledConfig {
        peers: 7,
        shards: 8,
        ..ScaledConfig::default()
    };
    let err = cfg.validate().expect_err("7 peers over 8 shards");
    assert!(
        err.contains("must not exceed peers"),
        "actionable message, got: {err}"
    );
    let over = ScaledConfig {
        shards: MAX_SHARDS + 1,
        ..ScaledConfig::default()
    };
    assert!(over.validate().is_err(), "ceiling enforced");
}
