//! The windowed telemetry layer is judged by three properties, each a
//! hard determinism claim:
//!
//! 1. **K-invariance** — every `k_invariant` metric's per-region series is
//!    a pure function of the scenario, not of how the population is cut
//!    into shards (K ∈ {1, 9, 16, `MAX_SHARDS`}).
//! 2. **Mode-identity** — the merged series' canonical bytes and JSON are
//!    byte-identical between the sequential oracle and the threaded run,
//!    across ≥10 seeded fault scenarios.
//! 3. **Detection** — replaying the `AlertEngine` over the merged series
//!    in virtual time detects every injected fault class; the alert log
//!    and the rule raises agree.
//!
//! Plus the aggregation seams the sidecar consumers rely on:
//! `RegistrySnapshot::merge` feeding the engine, and counter resets
//! absorbed as growth-from-zero.

use netsession_core::rng::DetRng;
use netsession_core::time::SimDuration;
use netsession_hybrid::alerts::{
    detected_classes, replay_standard_alerts, standard_rules, FAULT_CLASS_RULES,
};
use netsession_hybrid::{
    run_scaled, FaultEvent, FaultKind, FaultSchedule, ScaledConfig, MAX_SHARDS,
};
use netsession_obs::{AlertEngine, RegistrySnapshot};

/// A compact scenario that injects all four fault classes in different
/// regions, early enough that their windows close inside the run.
fn faulty_cfg(seed: u64, shards: usize) -> ScaledConfig {
    ScaledConfig {
        seed,
        peers: 2_000,
        objects: 250,
        days: 2,
        shards,
        window: SimDuration::from_secs(600),
        faults: FaultSchedule {
            events: vec![
                FaultEvent {
                    at_hours: 5,
                    kind: FaultKind::CnCrash { region: 0 },
                },
                FaultEvent {
                    at_hours: 12,
                    kind: FaultKind::DnWipe { region: 6 },
                },
                FaultEvent {
                    at_hours: 20,
                    kind: FaultKind::EdgeOutage {
                        region: 3,
                        secs: 7_200,
                    },
                },
                FaultEvent {
                    at_hours: 30,
                    kind: FaultKind::ChurnBurst { fraction: 0.4 },
                },
            ],
        },
        ..ScaledConfig::default()
    }
}

/// Property 1: per-region series of every `k_invariant` metric — and the
/// merge horizon itself — are unchanged by the shard count. The one
/// deliberately K-variant metric (`scaled.cross_shard_mail`) must be the
/// only difference: zero at K=1, non-zero once regions talk across
/// shards.
#[test]
fn per_region_series_are_invariant_in_shard_count() {
    let baseline = run_scaled(&faulty_cfg(11, 1), false, None)
        .timeseries
        .expect("sampling on by default");
    assert!(baseline.windows > 0);
    let mail_at_one: i64 = baseline
        .metric("scaled.cross_shard_mail")
        .unwrap()
        .global()
        .iter()
        .sum();
    assert_eq!(mail_at_one, 0, "a single shard has no one to mail");
    for shards in [9usize, 16, MAX_SHARDS] {
        let got = run_scaled(&faulty_cfg(11, shards), false, None)
            .timeseries
            .expect("sampling on by default");
        assert_eq!(got.windows, baseline.windows, "K={shards}: horizon");
        assert_eq!(got.groups, baseline.groups, "K={shards}: region labels");
        for (b, g) in baseline.metrics.iter().zip(&got.metrics) {
            assert_eq!(b.name, g.name, "K={shards}: catalog order");
            if b.k_invariant {
                assert_eq!(
                    b, g,
                    "K={shards}: {} must not depend on the partition",
                    b.name
                );
            } else {
                assert!(
                    g.global().iter().sum::<i64>() > 0,
                    "K={shards}: {} should see cross-shard traffic",
                    g.name
                );
            }
        }
    }
}

/// Property 2: canonical bytes and sidecar JSON of the merged series are
/// byte-identical between execution modes, across 10 seeded scenarios
/// that all carry faults (kind and placement randomized per seed).
#[test]
fn merged_series_bytes_identical_seq_vs_par_across_fault_scenarios() {
    for seed in 0..10u64 {
        let mut rng = DetRng::seeded(0x7153_0000 ^ seed);
        let days = 2 + rng.below(2);
        let events = (0..1 + rng.index(4))
            .map(|_| {
                let region = rng.below(9) as u32;
                let kind = match rng.index(4) {
                    0 => FaultKind::CnCrash { region },
                    1 => FaultKind::DnWipe { region },
                    2 => FaultKind::EdgeOutage {
                        region,
                        secs: 600 + rng.below(7_200),
                    },
                    _ => FaultKind::ChurnBurst {
                        fraction: 0.1 + rng.f64() * 0.6,
                    },
                };
                FaultEvent {
                    at_hours: rng.below(days * 24),
                    kind,
                }
            })
            .collect();
        let cfg = ScaledConfig {
            seed: seed.wrapping_mul(0x9e37_79b9) + 3,
            peers: 1_500 + rng.below(1_500),
            objects: 200 + rng.below(200),
            days,
            shards: [2, 3, 5, 9, 16][rng.index(5)],
            faults: FaultSchedule { events },
            ..ScaledConfig::default()
        };
        let seq = run_scaled(&cfg, false, None).timeseries.unwrap();
        let par = run_scaled(&cfg, true, None).timeseries.unwrap();
        assert_eq!(
            seq.encode(),
            par.encode(),
            "seed {seed}: canonical bytes diverged"
        );
        assert_eq!(seq.to_json(), par.to_json(), "seed {seed}: sidecar JSON");
    }
}

/// Property 3: at smoke scale under the full `scaled_campaign`, replaying
/// the standard rules over the merged series detects all four fault
/// classes, and every detection joins back to an injected fault (no
/// class is raised that was never injected).
#[test]
fn alert_replay_detects_all_four_fault_classes_at_smoke_scale() {
    let cfg = ScaledConfig {
        faults: FaultSchedule::scaled_campaign(7),
        ..ScaledConfig::smoke()
    };
    let out = run_scaled(&cfg, true, None);
    let series = out.timeseries.as_ref().expect("sampling on");
    let detections = replay_standard_alerts(series);
    let classes = detected_classes(&detections);
    assert_eq!(
        classes,
        vec!["cn_crash", "dn_wipe", "edge_outage", "churn_burst"],
        "every injected class must be detected"
    );
    // Alert-log join: each injected class appears in the structured alert
    // log, and each class rule that raised has at least one injection.
    for (class, rule, _metric) in FAULT_CLASS_RULES {
        let injected = out
            .regions
            .iter()
            .flat_map(|r| &r.alerts)
            .filter(|a| a.class == class)
            .count();
        let raised = detections
            .iter()
            .filter(|d| d.event.rule == rule && d.event.raised)
            .count();
        assert!(injected > 0, "{class}: campaign must inject it");
        assert!(raised > 0, "{rule}: replay must raise it");
    }
    // Rendered alert strings keep the legacy `h### region: class` shape.
    let rendered = out
        .regions
        .iter()
        .flat_map(|r| &r.alerts)
        .map(|a| a.render())
        .collect::<Vec<_>>();
    assert!(
        rendered.iter().any(|s| s.contains(": cn_crash")),
        "{rendered:?}"
    );
    assert!(rendered.iter().any(|s| s.contains("churn_burst dropped=")));
}

/// A fault-free run must replay clean: zero raised transitions, zero
/// detected classes — the false-positive guard the sidecar lint encodes.
#[test]
fn fault_free_replay_raises_nothing() {
    let cfg = ScaledConfig {
        peers: 2_000,
        objects: 250,
        days: 2,
        shards: 3,
        ..ScaledConfig::default()
    };
    let out = run_scaled(&cfg, true, None);
    let detections = replay_standard_alerts(out.timeseries.as_ref().unwrap());
    assert!(
        detections.iter().all(|d| !d.event.raised),
        "clean run raised: {:?}",
        detections
            .iter()
            .filter(|d| d.event.raised)
            .map(|d| d.event.rule.clone())
            .collect::<Vec<_>>()
    );
    assert!(detected_classes(&detections).is_empty());
    assert!(out.regions.iter().all(|r| r.alerts.is_empty()));
}

/// Turning sampling off is free-standing: the simulation, report text,
/// and structured alert log are byte-identical; only the sidecar
/// disappears.
#[test]
fn sampling_off_changes_nothing_but_the_sidecar() {
    let on_cfg = faulty_cfg(23, 5);
    let off_cfg = ScaledConfig {
        timeseries: false,
        ..on_cfg.clone()
    };
    let on = run_scaled(&on_cfg, true, None);
    let off = run_scaled(&off_cfg, true, None);
    assert!(on.timeseries.is_some());
    assert!(off.timeseries.is_none());
    assert_eq!(on.report(), off.report(), "report must not change");
    for (a, b) in on.regions.iter().zip(&off.regions) {
        assert_eq!(a, b, "per-region outputs must not change");
    }
}

/// `RegistrySnapshot::merge` feeding the `AlertEngine`, across a counter
/// reset: per-shard snapshots merge additively, the merged stream drives
/// the standard rules, and a raw counter dropping (a restart) is absorbed
/// as growth from zero — it raises like a genuine increase and never
/// panics or goes negative.
#[test]
fn merged_snapshots_drive_the_engine_across_counter_resets() {
    const HOUR: u64 = 3_600_000_000;
    let snap = |v: u64| {
        let mut s = RegistrySnapshot::default();
        s.counters.insert("hybrid.fault.cn_crashes".into(), v);
        s
    };
    // Two "shards" each saw 2 crashes: the fleet aggregate is 4.
    let mut fleet = snap(2);
    fleet.merge(&snap(2));
    assert_eq!(fleet.counter("hybrid.fault.cn_crashes"), 4);

    let mut engine = AlertEngine::new(standard_rules());
    // First observation is baseline — no raise.
    assert!(engine.observe(0, &fleet).is_empty());
    // Steady fleet for two windows: still quiet.
    assert!(engine.observe(HOUR, &fleet).is_empty());
    assert!(engine.observe(2 * HOUR, &fleet).is_empty());
    // One more crash on one shard: the merged value moves 4 -> 5.
    let mut bumped = snap(3);
    bumped.merge(&snap(2));
    let events = engine.observe(3 * HOUR, &bumped);
    assert!(
        events.iter().any(|e| e.rule == "control-crash" && e.raised),
        "merged increase must raise: {events:?}"
    );
    // A restart: raw drops 5 -> 1. Reset-as-growth-from-zero means this
    // reads as +1, which the delta:1 rule treats as another crash.
    let after_reset = engine.observe(5 * HOUR, &snap(1));
    assert!(
        after_reset
            .iter()
            .all(|e| e.rule != "control-crash" || e.raised),
        "reset must not clear-and-corrupt: {after_reset:?}"
    );
    // Quiet after the reset window passes: the rule clears.
    let cleared = engine.observe(8 * HOUR, &snap(1));
    assert!(
        cleared
            .iter()
            .any(|e| e.rule == "control-crash" && !e.raised),
        "quiet window must clear: {cleared:?}"
    );
    assert!(engine.active().is_empty());
}
