//! Scenario-level regression tests for driver bugfixes.
//!
//! Each test pins a bug that once lived in the event loop: requery-added
//! flows running at 0 B/s until an unrelated event recomputed rates, and
//! the requery gate collapsing to zero under integer division.

use netsession_core::id::PeerIndex;
use netsession_core::msg::NatType;
use netsession_core::time::{SimDuration, SimTime};
use netsession_core::units::Bandwidth;
use netsession_hybrid::{FaultEvent, FaultKind, HybridSim, Scenario, ScenarioConfig, SimOutput};
use netsession_logs::records::DownloadOutcome;
use netsession_world::population::PopulationConfig;
use netsession_world::workload::{Request, WorkloadConfig};

/// A requery that connects new sources must start moving bytes at the
/// next tick, not whenever the next unrelated Online/Offline/Arrival
/// event happens to recompute rates.
///
/// Construction: two peers. Peer 0 requests a p2p object half an hour
/// into the trace while the only seeder (peer 1) is still offline, so the
/// initial swarm query comes up empty and there is no edge backstop. The
/// seeder logs in around hour 2 and the next tick's requery connects it.
/// With the old `if any_finished` gate the new flow kept rate 0 until
/// peer 0's own scheduled logout around hour 13 triggered a recompute;
/// with the fix the transfer finishes within minutes of the connect. The
/// completion-time bound is what makes the test decisive.
#[test]
fn requery_connected_sources_transfer_immediately() {
    let mut cfg = ScenarioConfig::tiny();
    cfg.seed = 7;
    cfg.population = PopulationConfig {
        peers: 2,
        ases: 4,
        clone_fraction: 0.0,
        ..PopulationConfig::default()
    };
    cfg.objects = 20;
    cfg.workload = WorkloadConfig {
        downloads: 1,
        ..WorkloadConfig::default()
    };
    cfg.edge_backstop = false;
    cfg.daily_login_prob = 1.0;
    cfg.transfer.max_requery_rounds = 100_000;

    let mut scenario = Scenario::build(cfg);

    // Downloader: reachable, fat downlink, never uploads, habitually
    // online around noon GMT for one hour (its logout is the *only*
    // rate-recomputing event the old code could ride on).
    {
        let d = &mut scenario.population.peers[0];
        d.nat = NatType::Open;
        d.uploads_enabled = false;
        d.down = Bandwidth::from_mbps(1000.0);
        d.tz_offset = 0;
        d.online_start_hour = 12.0;
        d.online_hours = 1.0;
    }
    // Seeder: co-located with the downloader, reachable, fat uplink,
    // logs in around hour 2 and stays up.
    {
        let (c, city, as_index, asn) = {
            let d = &scenario.population.peers[0];
            (d.country, d.city, d.as_index, d.asn)
        };
        let s = &mut scenario.population.peers[1];
        s.nat = NatType::Open;
        s.uploads_enabled = true;
        s.up = Bandwidth::from_mbps(1000.0);
        s.country = c;
        s.city = city;
        s.as_index = as_index;
        s.asn = asn;
        s.tz_offset = 0;
        s.online_start_hour = 2.0;
        s.online_hours = 20.0;
    }

    // One request: peer 0 asks for a p2p-enabled object at minute 30,
    // long before the seeder's first login. (Pre-seeding puts cached
    // copies of every p2p object on the only upload-enabled peer.)
    let object = scenario
        .catalog
        .objects()
        .iter()
        .find(|o| o.policy.p2p_enabled)
        .expect("catalog has p2p objects")
        .id;
    scenario.workload.requests = vec![Request {
        at: SimTime::ZERO + SimDuration::from_mins(30),
        peer: PeerIndex(0),
        object,
    }];

    let out = HybridSim::new(scenario).run();

    assert!(out.stats.requeries > 0, "the empty swarm must requery");
    let rec = out
        .dataset
        .downloads
        .iter()
        .find(|r| r.object == object)
        .expect("the download must be logged");
    assert_eq!(rec.outcome, DownloadOutcome::Completed);
    assert_eq!(rec.bytes_infra.bytes(), 0, "no edge backstop configured");
    assert!(
        rec.bytes_peers.bytes() > 0,
        "bytes must come from the swarm"
    );
    assert!(
        rec.ended <= SimTime::ZERO + SimDuration::from_hours(6),
        "requery-added flow ran at stale 0 B/s: download dragged to {:?}",
        rec.ended
    );
}

/// `sufficient_peer_connections = 1` must still requery: the old gate
/// `sources.len() < sufficient / 2` floored to `< 0`, which is never
/// true, silently disabling re-queries for small-sufficiency configs.
#[test]
fn sufficient_one_still_requeries() {
    let mut cfg = ScenarioConfig::tiny();
    cfg.population = PopulationConfig {
        peers: 400,
        ases: 60,
        ..PopulationConfig::default()
    };
    cfg.objects = 100;
    cfg.workload = WorkloadConfig {
        downloads: 400,
        ..WorkloadConfig::default()
    };
    cfg.transfer.sufficient_peer_connections = 1;

    let out = HybridSim::run_config(cfg);
    assert!(
        out.stats.requeries > 0,
        "sufficient=1 must not disable re-queries (integer-division gate)"
    );
}

fn completion_rate(out: &SimOutput) -> f64 {
    out.stats.completed as f64 / out.dataset.downloads.len().max(1) as f64
}

/// §3.8: a CN crash drops every control connection in the region, but
/// peers "can always fall back" to the edge tier, so completion must stay
/// at the no-failure baseline (within a small allowance for the paced
/// reconnect window, during which downloads run edge-only and a little
/// slower). Also pins the recovery machinery: peers are disconnected,
/// paced readmissions fire, and caches are re-registered.
#[test]
fn paced_cn_failure_keeps_completion_near_baseline() {
    let cfg = ScenarioConfig::tiny();
    let baseline = HybridSim::run_config(cfg.clone());

    let mut chaos_cfg = cfg;
    // Crash every region's CN mid-month so the fault bites regardless of
    // where the population concentrates.
    chaos_cfg.faults.events = (0..9)
        .map(|r| FaultEvent {
            at_hours: 450,
            kind: FaultKind::CnCrash { region: r },
        })
        .collect();
    let chaos = HybridSim::run_config(chaos_cfg);

    let disconnected = chaos
        .metrics
        .counter("hybrid.fault.peers_disconnected")
        .get();
    let readmitted = chaos.metrics.counter("hybrid.fault.readmissions").get();
    assert!(disconnected > 0, "the crash must drop live connections");
    assert!(
        readmitted > 0 && readmitted <= disconnected,
        "paced readmissions must fire for (a subset of) dropped peers \
         ({readmitted} of {disconnected})"
    );
    assert!(
        completion_rate(&chaos) >= completion_rate(&baseline) - 0.02,
        "a paced CN failure must not hurt completion beyond the outage \
         window ({:.4} vs baseline {:.4})",
        completion_rate(&chaos),
        completion_rate(&baseline)
    );
}

/// An edge outage covering a download's start leaves it stalled (no
/// sources, no backstop) until the outage ends, when the backstop
/// re-attaches and the download completes — the recovery half of the
/// edge-outage story.
#[test]
fn edge_outage_defers_completion_until_recovery() {
    let mut cfg = ScenarioConfig::tiny();
    cfg.seed = 11;
    cfg.population = PopulationConfig {
        peers: 2,
        ases: 4,
        clone_fraction: 0.0,
        ..PopulationConfig::default()
    };
    cfg.objects = 20;
    cfg.workload = WorkloadConfig {
        downloads: 1,
        ..WorkloadConfig::default()
    };
    cfg.daily_login_prob = 1.0;

    let build = |outage: bool| {
        let mut cfg = cfg.clone();
        if outage {
            // Dark edge in every region for the first two hours.
            cfg.faults.events = (0..9)
                .map(|r| FaultEvent {
                    at_hours: 0,
                    kind: FaultKind::EdgeOutage {
                        region: r,
                        secs: 7_200,
                    },
                })
                .collect();
        }
        let mut scenario = Scenario::build(cfg);
        // Nobody uploads: no pre-seeded copies, so the edge is the only
        // byte source.
        for p in &mut scenario.population.peers {
            p.uploads_enabled = false;
        }
        let object = scenario
            .catalog
            .objects()
            .iter()
            .find(|o| o.policy.p2p_enabled)
            .expect("catalog has p2p objects")
            .id;
        scenario.workload.requests = vec![Request {
            at: SimTime::ZERO + SimDuration::from_mins(30),
            peer: PeerIndex(0),
            object,
        }];
        HybridSim::new(scenario).run()
    };

    let baseline = build(false);
    let rec = &baseline.dataset.downloads[0];
    assert_eq!(rec.outcome, DownloadOutcome::Completed);
    assert!(
        rec.ended < SimTime::ZERO + SimDuration::from_hours(2),
        "baseline must finish before the outage window would end ({:?})",
        rec.ended
    );

    let out = build(true);
    assert_eq!(out.metrics.counter("hybrid.fault.edge_outages").get(), 9);
    assert_eq!(
        out.metrics
            .counter("hybrid.fault.edge_flows_restored")
            .get(),
        1,
        "recovery must re-attach the stalled download's backstop"
    );
    let rec = &out.dataset.downloads[0];
    assert_eq!(rec.outcome, DownloadOutcome::Completed);
    assert_eq!(rec.bytes_peers.bytes(), 0);
    assert!(rec.bytes_infra.bytes() > 0);
    assert!(
        rec.ended > SimTime::ZERO + SimDuration::from_hours(2),
        "with the edge dark the download cannot finish early ({:?})",
        rec.ended
    );
    assert!(
        rec.ended < SimTime::ZERO + SimDuration::from_hours(4),
        "after recovery the backstop must finish the job ({:?})",
        rec.ended
    );
}

/// The full campaign — CN crash, DN wipe, edge outage, churn burst — must
/// exercise every recovery path and stay deterministic (the chaos bench's
/// byte-identical double-run gate rests on this).
#[test]
fn fault_campaign_exercises_all_paths_and_is_deterministic() {
    let mut cfg = ScenarioConfig::tiny();
    let mut events: Vec<FaultEvent> = Vec::new();
    for r in 0..9 {
        events.push(FaultEvent {
            at_hours: 200,
            kind: FaultKind::CnCrash { region: r },
        });
        events.push(FaultEvent {
            at_hours: 350,
            kind: FaultKind::DnWipe { region: r },
        });
        events.push(FaultEvent {
            at_hours: 500,
            kind: FaultKind::EdgeOutage {
                region: r,
                secs: 3_600,
            },
        });
    }
    events.push(FaultEvent {
        at_hours: 650,
        kind: FaultKind::ChurnBurst { fraction: 0.5 },
    });
    cfg.faults.events = events;

    let run = || HybridSim::run_config(cfg.clone());
    let a = run();

    let counter = |name: &str| a.metrics.counter(name).get();
    assert!(counter("hybrid.fault.peers_disconnected") > 0);
    assert!(counter("hybrid.fault.readmissions") > 0);
    assert!(
        counter("hybrid.fault.readds") > 0,
        "DN wipe must trigger RE-ADDs"
    );
    assert!(counter("hybrid.fault.churn_offline") > 0);
    assert_eq!(counter("hybrid.fault.injected"), 28);
    assert!(
        completion_rate(&a) > 0.8,
        "service must survive the whole campaign ({:.3})",
        completion_rate(&a)
    );
    // Fault recovery is traced even at the default 1-in-1024 sampling.
    let cats = a.trace.span_counts_by_cat();
    assert!(
        cats.get("fault").copied().unwrap_or(0) >= 28,
        "every fault roots an always-sampled trace span: {cats:?}"
    );

    let b = run();
    assert_eq!(a.stats.completed, b.stats.completed);
    assert_eq!(a.stats.p2p_bytes, b.stats.p2p_bytes);
    assert_eq!(a.stats.edge_bytes, b.stats.edge_bytes);
    assert_eq!(
        a.metrics.counter("hybrid.fault.readmissions").get(),
        b.metrics.counter("hybrid.fault.readmissions").get()
    );
    assert_eq!(
        a.trace.export_chrome_json(),
        b.trace.export_chrome_json(),
        "fault-campaign trace exports must be byte-identical"
    );
}

/// §3.8 alerting over virtual time: every injected fault class raises
/// its detection rule with a finite, bounded time-to-detection; the
/// zero-fault baseline produces an empty alert log (no `hybrid.fault.*`
/// counter ever exists, so no rule can fire); and the whole log is
/// deterministic across same-seed runs.
#[test]
fn alert_engine_detects_every_fault_class_deterministically() {
    let cfg = ScenarioConfig::tiny();
    let baseline = HybridSim::run_config(cfg.clone());
    assert!(
        baseline.alerts.is_empty(),
        "zero-fault baseline must fire zero alerts: {:?}",
        baseline.alerts
    );

    let mut chaos_cfg = cfg;
    let injections = [
        (200u64, FaultKind::CnCrash { region: 0 }),
        (350, FaultKind::DnWipe { region: 0 }),
        (
            500,
            FaultKind::EdgeOutage {
                region: 0,
                secs: 3_600,
            },
        ),
        (650, FaultKind::ChurnBurst { fraction: 0.5 }),
    ];
    chaos_cfg.faults.events = injections
        .iter()
        .map(|(at_hours, kind)| FaultEvent {
            at_hours: *at_hours,
            kind: *kind,
        })
        .collect();
    let run = || HybridSim::run_config(chaos_cfg.clone());
    let a = run();

    for ((at_hours, kind), (class, rule, _)) in injections
        .iter()
        .zip(netsession_hybrid::alerts::FAULT_CLASS_RULES)
    {
        let injected_us = at_hours * 3_600_000_000;
        let raise = a
            .alerts
            .iter()
            .find(|e| e.rule == rule && e.raised && e.at_us >= injected_us)
            .unwrap_or_else(|| panic!("{class} ({kind:?}) was never detected: {:?}", a.alerts));
        let ttd_us = raise.at_us - injected_us;
        assert!(
            ttd_us < 3_600_000_000,
            "{class} detection took {ttd_us}us (> 1h)"
        );
        // The alert also clears once the burst leaves the window.
        assert!(
            a.alerts
                .iter()
                .any(|e| e.rule == rule && !e.raised && e.at_us > raise.at_us),
            "{class} alert never cleared"
        );
    }

    let b = run();
    assert_eq!(a.alerts, b.alerts, "alert log must be byte-identical");
}
