//! Scenario-level regression tests for driver bugfixes.
//!
//! Each test pins a bug that once lived in the event loop: requery-added
//! flows running at 0 B/s until an unrelated event recomputed rates, and
//! the requery gate collapsing to zero under integer division.

use netsession_core::id::PeerIndex;
use netsession_core::msg::NatType;
use netsession_core::time::{SimDuration, SimTime};
use netsession_core::units::Bandwidth;
use netsession_hybrid::{HybridSim, Scenario, ScenarioConfig};
use netsession_logs::records::DownloadOutcome;
use netsession_world::population::PopulationConfig;
use netsession_world::workload::{Request, WorkloadConfig};

/// A requery that connects new sources must start moving bytes at the
/// next tick, not whenever the next unrelated Online/Offline/Arrival
/// event happens to recompute rates.
///
/// Construction: two peers. Peer 0 requests a p2p object half an hour
/// into the trace while the only seeder (peer 1) is still offline, so the
/// initial swarm query comes up empty and there is no edge backstop. The
/// seeder logs in around hour 2 and the next tick's requery connects it.
/// With the old `if any_finished` gate the new flow kept rate 0 until
/// peer 0's own scheduled logout around hour 13 triggered a recompute;
/// with the fix the transfer finishes within minutes of the connect. The
/// completion-time bound is what makes the test decisive.
#[test]
fn requery_connected_sources_transfer_immediately() {
    let mut cfg = ScenarioConfig::tiny();
    cfg.seed = 7;
    cfg.population = PopulationConfig {
        peers: 2,
        ases: 4,
        clone_fraction: 0.0,
        ..PopulationConfig::default()
    };
    cfg.objects = 20;
    cfg.workload = WorkloadConfig {
        downloads: 1,
        ..WorkloadConfig::default()
    };
    cfg.edge_backstop = false;
    cfg.daily_login_prob = 1.0;
    cfg.transfer.max_requery_rounds = 100_000;

    let mut scenario = Scenario::build(cfg);

    // Downloader: reachable, fat downlink, never uploads, habitually
    // online around noon GMT for one hour (its logout is the *only*
    // rate-recomputing event the old code could ride on).
    {
        let d = &mut scenario.population.peers[0];
        d.nat = NatType::Open;
        d.uploads_enabled = false;
        d.down = Bandwidth::from_mbps(1000.0);
        d.tz_offset = 0;
        d.online_start_hour = 12.0;
        d.online_hours = 1.0;
    }
    // Seeder: co-located with the downloader, reachable, fat uplink,
    // logs in around hour 2 and stays up.
    {
        let (c, city, as_index, asn) = {
            let d = &scenario.population.peers[0];
            (d.country, d.city, d.as_index, d.asn)
        };
        let s = &mut scenario.population.peers[1];
        s.nat = NatType::Open;
        s.uploads_enabled = true;
        s.up = Bandwidth::from_mbps(1000.0);
        s.country = c;
        s.city = city;
        s.as_index = as_index;
        s.asn = asn;
        s.tz_offset = 0;
        s.online_start_hour = 2.0;
        s.online_hours = 20.0;
    }

    // One request: peer 0 asks for a p2p-enabled object at minute 30,
    // long before the seeder's first login. (Pre-seeding puts cached
    // copies of every p2p object on the only upload-enabled peer.)
    let object = scenario
        .catalog
        .objects()
        .iter()
        .find(|o| o.policy.p2p_enabled)
        .expect("catalog has p2p objects")
        .id;
    scenario.workload.requests = vec![Request {
        at: SimTime::ZERO + SimDuration::from_mins(30),
        peer: PeerIndex(0),
        object,
    }];

    let out = HybridSim::new(scenario).run();

    assert!(out.stats.requeries > 0, "the empty swarm must requery");
    let rec = out
        .dataset
        .downloads
        .iter()
        .find(|r| r.object == object)
        .expect("the download must be logged");
    assert_eq!(rec.outcome, DownloadOutcome::Completed);
    assert_eq!(rec.bytes_infra.bytes(), 0, "no edge backstop configured");
    assert!(
        rec.bytes_peers.bytes() > 0,
        "bytes must come from the swarm"
    );
    assert!(
        rec.ended <= SimTime::ZERO + SimDuration::from_hours(6),
        "requery-added flow ran at stale 0 B/s: download dragged to {:?}",
        rec.ended
    );
}

/// `sufficient_peer_connections = 1` must still requery: the old gate
/// `sources.len() < sufficient / 2` floored to `< 0`, which is never
/// true, silently disabling re-queries for small-sufficiency configs.
#[test]
fn sufficient_one_still_requeries() {
    let mut cfg = ScenarioConfig::tiny();
    cfg.population = PopulationConfig {
        peers: 400,
        ases: 60,
        ..PopulationConfig::default()
    };
    cfg.objects = 100;
    cfg.workload = WorkloadConfig {
        downloads: 400,
        ..WorkloadConfig::default()
    };
    cfg.transfer.sufficient_peer_connections = 1;

    let out = HybridSim::run_config(cfg);
    assert!(
        out.stats.requeries > 0,
        "sufficient=1 must not disable re-queries (integer-division gate)"
    );
}
