//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable in this environment, so the workspace keeps
//! its property tests by providing the subset of the proptest API they use
//! as an in-tree crate with the same package name. Semantics: each test
//! runs `cases` iterations with values sampled from the given strategies
//! using a deterministic RNG seeded from the test's module path and name,
//! so failures are reproducible run-to-run. There is no shrinking — a
//! failing case panics with the plain assertion message.
//!
//! Supported surface: integer/float `Range` strategies, `any::<T>()` for
//! primitives and arrays, tuple strategies up to 6 elements,
//! `collection::vec`, `&str` regex-ish string strategies of the form
//! `".{lo,hi}"`, `Just`, `.prop_map`, `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..config.cases {
                    let _ = __case;
                    $crate::__proptest_case!(rng; {$body} $($args)*);
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; {$body:block}) => { $body };
    ($rng:ident; {$body:block} $pat:pat in $strat:expr) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident; {$body:block} $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_case!($rng; {$body} $($rest)*)
    }};
}

/// Skip the current case when an assumption does not hold. Expands to a
/// `continue` of the per-case loop, so rejected samples simply don't count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in -5i64..5, c in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u32..9, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn tuples_and_map(x in (0usize..4).prop_map(|i| i * 2), (a, b) in (any::<bool>(), 1u8..3)) {
            prop_assert!(x % 2 == 0 && x < 8);
            prop_assert!(a || !a);
            prop_assert!(b == 1 || b == 2);
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut r1 = crate::test_runner::TestRng::for_test("x");
        let mut r2 = crate::test_runner::TestRng::for_test("x");
        let s = crate::collection::vec(0u64..1000, 0..50);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
