//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Something that can produce values of one type from the test RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy yielding one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The result of [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias towards edge values: real proptest over-weights
                // boundaries, and the codec tests lean on that.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        match rng.below(8) {
            0 => 0,
            1 => u128::MAX,
            _ => ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128,
        }
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles spanning many magnitudes.
        let mag = rng.below(613) as i32 - 306;
        let mantissa = rng.next_u64() as f64 / u64::MAX as f64;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * 10f64.powi(mag)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_strategy_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Vector length specification for [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.min < self.size.max, "empty vec size range");
        let len = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// String strategies written as regex literals.
///
/// Only the pattern shapes the workspace actually uses are understood:
/// `.{lo,hi}` (any chars, length in `lo..=hi`) and a bare run of `.`s.
/// Anything else falls back to a short printable string, which keeps the
/// round-trip properties meaningful without a regex engine.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        // `.` matches anything but newline; mix ASCII with multibyte
        // chars so UTF-8 handling gets exercised.
        const EXTRA: [char; 8] = ['é', 'ß', '中', '💙', 'Ω', 'ñ', '\t', '\u{80}'];
        (0..len)
            .map(|_| {
                if rng.below(8) == 0 {
                    EXTRA[rng.below(EXTRA.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5f) as u8) as char
                }
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix('.')?;
    if rest.is_empty() {
        return Some((1, 1));
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}
