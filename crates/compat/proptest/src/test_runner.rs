//! Test configuration and the deterministic RNG behind sampling.

/// Per-test configuration. Only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG (xoshiro-style) seeded from the test name, so every
/// run of a given test sees the same case sequence.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (normally `module::test_name`).
    pub fn for_test(label: &str) -> TestRng {
        // FNV-1a over the label, then SplitMix64 to fill the state.
        let mut h = 0xcbf29ce484222325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (`bound` of 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (bound as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("below");
        for bound in [1u64, 2, 3, 7, 100, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let mut a = TestRng::for_test("a");
        let mut b = TestRng::for_test("b");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }
}
