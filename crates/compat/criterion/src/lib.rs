//! Offline stand-in for the `criterion` crate.
//!
//! Implements the builder/macro surface the workspace benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!` — on a simple wall-clock harness: each benchmark is
//! warmed up briefly, then timed over enough iterations to fill a fixed
//! measurement window, and the mean ns/iter (plus MB/s when a throughput
//! is declared) is printed. No statistics, plots, or saved baselines.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier: stops the optimizer from deleting benchmarked
/// work without introducing measurable overhead.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared data volume per iteration, used to report MB/s.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f` over the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for a short fixed window.
        let warmup_end = Instant::now() + WARMUP;
        let mut warm_iters = 0u64;
        while Instant::now() < warmup_end {
            black_box(f());
            warm_iters += 1;
        }
        // Choose an iteration count that roughly fills the window.
        let per_iter = WARMUP.as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target = (MEASURE.as_nanos() / per_iter.max(1)).clamp(10, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = target;
    }
}

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(400);

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh harness.
    pub fn default() -> Criterion {
        Criterion {}
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration data volume for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; matches criterion's API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let ns = b.total.as_nanos() as f64 / b.iters.max(1) as f64;
    let mut line = format!("{name:<40} {:>12.1} ns/iter", ns);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / ns * 1e9 / (1024.0 * 1024.0);
            let _ = write!(line, " {mbps:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / ns * 1e9;
            let _ = write!(line, " {eps:>10.0} elem/s");
        }
        None => {}
    }
    println!("{line}");
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
