#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from the repo root: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== cargo test --workspace"
cargo test -q --workspace

echo "== trace determinism (same seed => byte-identical export)"
cargo build -q --release -p netsession-bench --bin headline
bin="$PWD/target/release/headline"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
(cd "$tmp" && "$bin" --scale 2000 --downloads 3000 >run1.txt 2>/dev/null && mv results/headline.trace.json trace1.json)
(cd "$tmp" && "$bin" --scale 2000 --downloads 3000 >run2.txt 2>/dev/null && mv results/headline.trace.json trace2.json)
cmp "$tmp/run1.txt" "$tmp/run2.txt"
cmp "$tmp/trace1.json" "$tmp/trace2.json"

echo "== chaos determinism (same seed => byte-identical campaign + trace + alerts)"
cargo build -q --release -p netsession-bench --bin chaos
chaos_bin="$PWD/target/release/chaos"
(cd "$tmp" && "$chaos_bin" --scale 2000 --downloads 3000 >chaos1.txt 2>/dev/null \
    && mv results/chaos.trace.json chaos_trace1.json \
    && mv results/alerts.txt alerts1.txt && mv results/alerts.json alerts1.json)
(cd "$tmp" && "$chaos_bin" --scale 2000 --downloads 3000 >chaos2.txt 2>/dev/null \
    && mv results/chaos.trace.json chaos_trace2.json \
    && mv results/alerts.txt alerts2.txt && mv results/alerts.json alerts2.json)
cmp "$tmp/chaos1.txt" "$tmp/chaos2.txt"
cmp "$tmp/chaos_trace1.json" "$tmp/chaos_trace2.json"
cmp "$tmp/alerts1.txt" "$tmp/alerts2.txt"
cmp "$tmp/alerts1.json" "$tmp/alerts2.json"

echo "== alert coverage (every hybrid.fault.* counter ruled or allowlisted)"
counters="$(grep -rhoE 'hybrid\.fault\.[a-z_]+' crates/hybrid/src --include='*.rs' --exclude=alerts.rs | sort -u)"
missing=""
for c in $counters; do
    grep -qF "\"$c\"" crates/hybrid/src/alerts.rs || missing="$missing $c"
done
if [ -n "$missing" ]; then
    echo "hybrid.fault.* counters with no alert rule or ALLOWLIST entry in crates/hybrid/src/alerts.rs:$missing" >&2
    exit 1
fi

echo "== shard determinism (2-shard parallel == sequential oracle, smoke scale)"
# The sharded million-peer runner must be an optimization, not an
# approximation: stdout (merged report, per-region SHA-256 stream digests,
# alerts, tallies, and the shard profiler's load-imbalance report) is
# compared byte-for-byte between the threaded run and the one-thread
# oracle, and across repeat runs. Runs in $tmp so the smoke-scale sidecars
# never clobber the committed full-scale results/scale.* artifacts.
cargo build -q --release -p netsession-bench --bin scale
scale_bin="$PWD/target/release/scale"
(cd "$tmp" && "$scale_bin" --smoke --sequential --profile-det-out det_seq.json >scale_seq.txt 2>/dev/null)
(cd "$tmp" && "$scale_bin" --smoke --parallel --profile-det-out det_par1.json >scale_par1.txt 2>/dev/null)
(cd "$tmp" && "$scale_bin" --smoke --parallel --profile-det-out det_par2.json >scale_par2.txt 2>/dev/null)
cmp "$tmp/scale_seq.txt" "$tmp/scale_par1.txt"
cmp "$tmp/scale_par1.txt" "$tmp/scale_par2.txt"

echo "== shard-profile determinism (deterministic telemetry stream byte-diffed)"
# The profiler's deterministic channel — per-window per-shard events,
# barrier queue depth, mail matrix, and the SHA-256 stream fingerprint —
# must be byte-identical across execution modes and repeat runs. Volatile
# wall-clock timings are excluded by construction (they live only in the
# sidecar's "volatile" section, which --profile-det-out omits).
cmp "$tmp/det_seq.json" "$tmp/det_par1.json"
cmp "$tmp/det_par1.json" "$tmp/det_par2.json"
"$scale_bin" --lint-profile "$tmp/results/scale.profile.json"
if [ -e results/scale.profile.json ]; then
    "$scale_bin" --lint-profile results/scale.profile.json
fi

echo "== sub-region shard determinism (16 sub-shards > 9 regions, smoke scale)"
# Shard keys are contiguous sub-region blocks, so K may exceed the nine
# regions. Gate the interesting side of that boundary: at K=16 every
# populous region is split across shards, and the parallel run must still
# be byte-identical to the sequential oracle.
(cd "$tmp" && "$scale_bin" --smoke --shards 16 --sequential >scale16_seq.txt 2>/dev/null)
(cd "$tmp" && "$scale_bin" --smoke --shards 16 --parallel >scale16_par.txt 2>/dev/null)
cmp "$tmp/scale16_seq.txt" "$tmp/scale16_par.txt"

echo "== timeseries determinism (chaos smoke: seq vs par sidecar byte-diff + lint)"
# The merged windowed-telemetry sidecar is a deterministic artifact: under
# the full fault campaign at smoke scale, the sequential oracle and the
# threaded run must print byte-identical stdout and write byte-identical
# sidecars; the fresh sidecar must pass its own lint (schema, digest,
# injected=>detected join), and the committed full-scale sidecar must
# still lint — a stale or hand-edited snapshot fails on its digest.
(cd "$tmp" && "$scale_bin" --smoke --chaos --sequential --timeseries-out ts_seq.json >ts_seq.txt 2>/dev/null)
(cd "$tmp" && "$scale_bin" --smoke --chaos --parallel --timeseries-out ts_par.json >ts_par.txt 2>/dev/null)
cmp "$tmp/ts_seq.txt" "$tmp/ts_par.txt"
cmp "$tmp/ts_seq.json" "$tmp/ts_par.json"
"$scale_bin" --lint-timeseries "$tmp/ts_seq.json"
if [ -e results/scale.timeseries.json ]; then
    "$scale_bin" --lint-timeseries results/scale.timeseries.json
fi

echo "== bench snapshot lint + smoke regression gate (perfbench --check)"
# Parses results/bench/BENCH_*.json (schema + required fields), re-runs the
# wheel-vs-heap smoke A/B asserting bit-identical outputs, and applies a
# coarse wall-clock gate with generous (5x) tolerance — see docs/PERFORMANCE.md.
cargo build -q --release -p netsession-bench --bin perfbench
perfbench_bin="$PWD/target/release/perfbench"
found_bench=""
for snap in results/bench/BENCH_*.json; do
    [ -e "$snap" ] || continue
    found_bench=1
    "$perfbench_bin" --check "$snap"
done
if [ -z "$found_bench" ]; then
    echo "no results/bench/BENCH_*.json snapshot committed" >&2
    exit 1
fi

echo "== perf trajectory (perfbench --trend: every snapshot parses, BENCH_10 present)"
# Cross-PR table from every committed BENCH_*.json; fails when this PR's
# snapshot is missing or lacks the families its issue is required to carry.
"$perfbench_bin" --trend --require 10

echo "== committed trace exports stay under 1 MiB"
oversize="$(find results -name '*.trace.json' -size +1M 2>/dev/null || true)"
if [ -n "$oversize" ]; then
    echo "trace export(s) exceed the 1 MiB budget:" >&2
    echo "$oversize" >&2
    exit 1
fi

echo "All checks passed."
