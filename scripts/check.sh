#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from the repo root: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== cargo test --workspace"
cargo test -q --workspace

echo "All checks passed."
